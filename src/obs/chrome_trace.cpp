#include "obs/chrome_trace.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "obs/json.hpp"

namespace hcc::obs {

namespace {

std::string num(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

std::string chrome_trace_json(
    const std::vector<TraceEvent>& events,
    const std::map<std::uint32_t, std::string>& track_names) {
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& [track, name] : track_names) {
    if (!first) os << ',';
    first = false;
    os << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":" << track
       << ",\"args\":{\"name\":\"" << json_escape(name) << "\"}}";
  }
  for (const auto& ev : events) {
    if (!first) os << ',';
    first = false;
    os << "{\"ph\":\"X\",\"name\":\"" << json_escape(ev.name)
       << "\",\"cat\":\"" << json_escape(ev.cat) << "\",\"pid\":0,\"tid\":"
       << ev.track << ",\"ts\":" << num(ev.ts_us)
       << ",\"dur\":" << num(ev.dur_us);
    if (!ev.args.empty()) {
      os << ",\"args\":{";
      bool first_arg = true;
      for (const auto& [key, value] : ev.args) {
        if (!first_arg) os << ',';
        first_arg = false;
        os << '"' << json_escape(key) << "\":\"" << json_escape(value) << '"';
      }
      os << '}';
    }
    os << '}';
  }
  os << "]}";
  return os.str();
}

bool write_chrome_trace(const std::vector<TraceEvent>& events,
                        const std::string& path,
                        const std::map<std::uint32_t, std::string>& tracks) {
  std::ofstream out(path);
  if (!out) return false;
  out << chrome_trace_json(events, tracks) << '\n';
  return static_cast<bool>(out);
}

bool write_chrome_trace(const TraceRecorder& recorder,
                        const std::string& path) {
  return write_chrome_trace(recorder.snapshot(), path,
                            recorder.track_names());
}

// ---------------------------------------------------------------------------
// Minimal JSON parser (objects, arrays, strings, numbers, true/false/null) —
// just enough to round-trip what chrome_trace_json emits.

namespace {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  std::optional<JsonValue> parse() {
    auto value = parse_value();
    skip_ws();
    if (!value || pos_ != text_.size()) return std::nullopt;
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  std::optional<JsonValue> parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) return std::nullopt;
    switch (text_[pos_]) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return parse_string();
      case 't':
      case 'f':
      case 'n': return parse_literal();
      default: return parse_number();
    }
  }

  std::optional<JsonValue> parse_object() {
    if (!consume('{')) return std::nullopt;
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (consume('}')) return v;
    while (true) {
      auto key = parse_string();
      if (!key || !consume(':')) return std::nullopt;
      auto value = parse_value();
      if (!value) return std::nullopt;
      v.object.emplace(std::move(key->string), std::move(*value));
      if (consume(',')) continue;
      if (consume('}')) return v;
      return std::nullopt;
    }
  }

  std::optional<JsonValue> parse_array() {
    if (!consume('[')) return std::nullopt;
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (consume(']')) return v;
    while (true) {
      auto value = parse_value();
      if (!value) return std::nullopt;
      v.array.push_back(std::move(*value));
      if (consume(',')) continue;
      if (consume(']')) return v;
      return std::nullopt;
    }
  }

  std::optional<JsonValue> parse_string() {
    if (!consume('"')) return std::nullopt;
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return v;
      if (c != '\\') {
        v.string += c;
        continue;
      }
      if (pos_ >= text_.size()) return std::nullopt;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': v.string += '"'; break;
        case '\\': v.string += '\\'; break;
        case '/': v.string += '/'; break;
        case 'n': v.string += '\n'; break;
        case 'r': v.string += '\r'; break;
        case 't': v.string += '\t'; break;
        case 'b': v.string += '\b'; break;
        case 'f': v.string += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return std::nullopt;
          const unsigned code =
              std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16);
          pos_ += 4;
          // ASCII only — all this exporter ever escapes.
          v.string += static_cast<char>(code & 0x7f);
          break;
        }
        default: return std::nullopt;
      }
    }
    return std::nullopt;
  }

  std::optional<JsonValue> parse_literal() {
    JsonValue v;
    if (text_.compare(pos_, 4, "true") == 0) {
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
      pos_ += 4;
      return v;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      v.kind = JsonValue::Kind::kBool;
      pos_ += 5;
      return v;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return v;
    }
    return std::nullopt;
  }

  std::optional<JsonValue> parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return std::nullopt;
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    char* end = nullptr;
    const std::string token = text_.substr(start, pos_ - start);
    v.number = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return std::nullopt;
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

const JsonValue* find(const JsonValue& obj, const std::string& key) {
  if (obj.kind != JsonValue::Kind::kObject) return nullptr;
  const auto it = obj.object.find(key);
  return it == obj.object.end() ? nullptr : &it->second;
}

}  // namespace

std::optional<ParsedTrace> parse_chrome_trace(const std::string& json) {
  const auto root = JsonParser(json).parse();
  if (!root) return std::nullopt;
  const JsonValue* events = find(*root, "traceEvents");
  if (events == nullptr || events->kind != JsonValue::Kind::kArray) {
    return std::nullopt;
  }
  ParsedTrace trace;
  for (const auto& entry : events->array) {
    const JsonValue* ph = find(entry, "ph");
    if (ph == nullptr || ph->kind != JsonValue::Kind::kString) {
      return std::nullopt;
    }
    const JsonValue* tid = find(entry, "tid");
    const std::uint32_t track =
        tid != nullptr ? static_cast<std::uint32_t>(tid->number) : 0;
    if (ph->string == "M") {
      const JsonValue* args = find(entry, "args");
      const JsonValue* name = args ? find(*args, "name") : nullptr;
      if (name != nullptr) trace.track_names[track] = name->string;
      continue;
    }
    if (ph->string != "X") continue;
    TraceEvent ev;
    ev.track = track;
    if (const JsonValue* name = find(entry, "name")) ev.name = name->string;
    if (const JsonValue* cat = find(entry, "cat")) ev.cat = cat->string;
    if (const JsonValue* ts = find(entry, "ts")) ev.ts_us = ts->number;
    if (const JsonValue* dur = find(entry, "dur")) ev.dur_us = dur->number;
    if (const JsonValue* args = find(entry, "args")) {
      for (const auto& [key, value] : args->object) {
        ev.args.emplace_back(key, value.string);
      }
    }
    trace.events.push_back(std::move(ev));
  }
  return trace;
}

}  // namespace hcc::obs
