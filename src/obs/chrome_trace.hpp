// Chrome-trace (chrome://tracing / Perfetto "trace event format") export.
//
// Renders recorded spans — measured (TraceRecorder) or reconstructed from a
// simulated sim::EpochTiming — as a JSON object with a `traceEvents` array
// of complete ("ph":"X") events plus thread_name metadata, loadable in
// chrome://tracing.  A minimal parser for the same subset supports
// round-trip validation in tests and tooling.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "obs/span.hpp"

namespace hcc::obs {

/// Serializes events (+ optional per-track thread names) as a Chrome-trace
/// JSON document.
std::string chrome_trace_json(
    const std::vector<TraceEvent>& events,
    const std::map<std::uint32_t, std::string>& track_names = {});

/// Writes chrome_trace_json(...) to `path`; false on IO failure.
bool write_chrome_trace(
    const std::vector<TraceEvent>& events, const std::string& path,
    const std::map<std::uint32_t, std::string>& track_names = {});

/// Snapshot + track names of a recorder, written to `path`.
bool write_chrome_trace(const TraceRecorder& recorder,
                        const std::string& path);

/// A parsed trace document (the subset this module emits).
struct ParsedTrace {
  std::vector<TraceEvent> events;  ///< the "ph":"X" events
  std::map<std::uint32_t, std::string> track_names;
};

/// Parses a Chrome-trace JSON document produced by chrome_trace_json (or
/// any document restricted to objects/arrays/strings/numbers/bools/null).
/// nullopt on malformed JSON or a missing traceEvents array.
std::optional<ParsedTrace> parse_chrome_trace(const std::string& json);

}  // namespace hcc::obs
