#include "obs/span.hpp"

namespace hcc::obs {

double TraceRecorder::now_us() const {
  std::chrono::steady_clock::time_point origin;
  {
    std::lock_guard lock(mutex_);
    origin = epoch_;
  }
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - origin)
      .count();
}

void TraceRecorder::record(TraceEvent event) {
  if (!enabled()) return;
  std::lock_guard lock(mutex_);
  events_.push_back(std::move(event));
}

void TraceRecorder::set_track_name(std::uint32_t track, std::string name) {
  std::lock_guard lock(mutex_);
  tracks_[track] = std::move(name);
}

std::size_t TraceRecorder::size() const {
  std::lock_guard lock(mutex_);
  return events_.size();
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  std::lock_guard lock(mutex_);
  return events_;
}

std::map<std::uint32_t, std::string> TraceRecorder::track_names() const {
  std::lock_guard lock(mutex_);
  return tracks_;
}

void TraceRecorder::clear() {
  std::lock_guard lock(mutex_);
  events_.clear();
  tracks_.clear();
  epoch_ = std::chrono::steady_clock::now();
}

TraceRecorder& trace() {
  static TraceRecorder global;
  return global;
}

ScopedSpan::ScopedSpan(TraceRecorder& recorder, std::string name,
                       std::string cat, std::uint32_t track)
    : recorder_(&recorder), start_(std::chrono::steady_clock::now()) {
  event_.name = std::move(name);
  event_.cat = std::move(cat);
  event_.track = track;
}

ScopedSpan::ScopedSpan(std::string name, std::string cat, std::uint32_t track)
    : ScopedSpan(trace(), std::move(name), std::move(cat), track) {}

void ScopedSpan::arg(std::string key, std::string value) {
  event_.args.emplace_back(std::move(key), std::move(value));
}

double ScopedSpan::stop() {
  if (stopped_) return seconds_;
  stopped_ = true;
  const auto end = std::chrono::steady_clock::now();
  seconds_ = std::chrono::duration<double>(end - start_).count();
  if (recorder_->enabled()) {
    // Timestamps are computed against the recorder epoch only when the
    // event is actually kept, so disabled spans never touch the recorder.
    const double end_us = recorder_->now_us();
    event_.dur_us = seconds_ * 1e6;
    event_.ts_us = end_us - event_.dur_us;
    if (event_.ts_us < 0.0) event_.ts_us = 0.0;
    recorder_->record(std::move(event_));
  }
  return seconds_;
}

}  // namespace hcc::obs
