// RAII scoped spans and the trace recorder behind them.
//
// A ScopedSpan times one phase of the collaborative-computing timeline —
// the paper's `pull`, `compute`, `push`, `sync` (Section 3.2) — and, when
// tracing is enabled, records a complete event the Chrome-trace exporter
// can render.  Recording is off by default so instrumented hot paths cost
// two steady_clock reads and nothing else; stop() always returns the
// elapsed seconds so callers can feed accumulators and histograms even
// with tracing off.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace hcc::obs {

/// Span phase category names (Chrome trace `cat`): the paper's epoch terms.
inline constexpr const char* kPhaseCategory = "phase";
inline constexpr const char* kCommCategory = "comm";
inline constexpr const char* kEpochCategory = "epoch";

/// One complete ("ph":"X") trace event.  `track` renders as the Chrome
/// trace tid, so per-worker phases land on per-worker rows.
struct TraceEvent {
  std::string name;
  std::string cat;
  std::uint32_t track = 0;
  double ts_us = 0.0;   ///< start, microseconds since the recorder epoch
  double dur_us = 0.0;  ///< duration, microseconds
  std::vector<std::pair<std::string, std::string>> args;
};

/// Thread-safe append-only event sink with its own time origin.
class TraceRecorder {
 public:
  /// Enables/disables event recording (spans still time themselves).
  void set_enabled(bool enabled) noexcept {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Microseconds since this recorder's construction (or last clear()).
  double now_us() const;

  /// Appends `event` if recording is enabled.
  void record(TraceEvent event);

  /// Human name for a track (Chrome's thread_name metadata) — e.g. the
  /// worker's device name.
  void set_track_name(std::uint32_t track, std::string name);

  std::size_t size() const;
  std::vector<TraceEvent> snapshot() const;
  std::map<std::uint32_t, std::string> track_names() const;

  /// Drops all events and track names and restarts the time origin.
  void clear();

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::map<std::uint32_t, std::string> tracks_;
  std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();
};

/// The process-global recorder the instrumented runtime writes to.
TraceRecorder& trace();

/// Times a scope; on stop (or destruction) records one TraceEvent into the
/// recorder when tracing is enabled.
class ScopedSpan {
 public:
  ScopedSpan(TraceRecorder& recorder, std::string name, std::string cat,
             std::uint32_t track = 0);
  /// Convenience: record into the global trace().
  ScopedSpan(std::string name, std::string cat, std::uint32_t track = 0);

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() { stop(); }

  /// Attaches a key/value argument (rendered in the trace viewer).
  void arg(std::string key, std::string value);

  /// Ends the span (idempotent) and returns its duration in seconds.
  double stop();

 private:
  TraceRecorder* recorder_;
  TraceEvent event_;
  std::chrono::steady_clock::time_point start_;
  bool stopped_ = false;
  double seconds_ = 0.0;
};

}  // namespace hcc::obs
