// Cost-model drift report.
//
// The DataManager's partition decisions (DP1/DP2, Algorithm 1) trust the
// Section 3.2 cost model's per-phase predictions (Eq. 1-5).  This module
// compares those predictions against what the runtime actually measured —
// per worker, per phase (pull / compute / push / sync) — and condenses the
// comparison into relative errors the registry, the report formatter and
// the adaptive controller can act on.  Pure math over plain structs: no
// dependency on core or sim, so both can feed it.
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace hcc::obs {

/// One worker's epoch decomposed into the paper's four phase terms.
struct PhaseTimes {
  double pull_s = 0.0;
  double compute_s = 0.0;
  double push_s = 0.0;
  double sync_s = 0.0;

  double total() const noexcept {
    return pull_s + compute_s + push_s + sync_s;
  }
};

/// Signed relative errors (measured - predicted) / predicted, one per phase
/// plus the whole-epoch term.
struct PhaseDrift {
  double pull = 0.0;
  double compute = 0.0;
  double push = 0.0;
  double sync = 0.0;
  double total = 0.0;
};

struct WorkerDrift {
  PhaseTimes predicted;
  PhaseTimes measured;
  PhaseDrift rel_err;
};

struct DriftReport {
  std::vector<WorkerDrift> workers;
  double max_abs_rel_err = 0.0;   ///< worst phase error across all workers
  double mean_abs_rel_err = 0.0;  ///< mean |error| over all worker phases
};

/// (measured - predicted) / predicted.  Both ~0 -> 0 (an unused phase is
/// not drift); predicted ~0 with measured > 0 saturates at +1 per measured
/// unit of absolute time, i.e. we fall back to measured / kDriftFloor
/// capped at kMaxRelErr so reports stay finite.
double relative_error(double measured, double predicted);

/// Largest |relative error| a report will carry (keeps JSON/gauges finite).
inline constexpr double kMaxRelErr = 100.0;

/// Element-wise drift of measured against predicted phase times.  The two
/// vectors must have equal length.
DriftReport compute_drift(const std::vector<PhaseTimes>& predicted,
                          const std::vector<PhaseTimes>& measured);

/// Publishes the report as gauges: `<prefix>.w<i>.{pull,compute,push,sync,
/// total}_rel_err`, `<prefix>.max_abs_rel_err`, `<prefix>.mean_abs_rel_err`.
void publish_drift(MetricsRegistry& registry, const DriftReport& report,
                   const std::string& prefix = "drift");

/// Human-readable drift table (percentages), one row per worker.
std::string format_drift(const DriftReport& report,
                         const std::vector<std::string>& worker_names = {});

}  // namespace hcc::obs
