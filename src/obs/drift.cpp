#include "obs/drift.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

#include "util/table.hpp"

namespace hcc::obs {

namespace {
/// Below this many seconds a predicted phase counts as "absent": the sim's
/// tiniest real phases are ~1e-9 s, while true zeros come from phases a
/// strategy disabled entirely.
constexpr double kDriftFloor = 1e-12;
}  // namespace

double relative_error(double measured, double predicted) {
  if (std::abs(predicted) < kDriftFloor) {
    if (std::abs(measured) < kDriftFloor) return 0.0;
    return measured > 0.0 ? kMaxRelErr : -kMaxRelErr;
  }
  const double err = (measured - predicted) / predicted;
  return std::clamp(err, -kMaxRelErr, kMaxRelErr);
}

DriftReport compute_drift(const std::vector<PhaseTimes>& predicted,
                          const std::vector<PhaseTimes>& measured) {
  assert(predicted.size() == measured.size());
  DriftReport report;
  report.workers.reserve(predicted.size());
  double abs_sum = 0.0;
  std::size_t terms = 0;
  for (std::size_t w = 0; w < predicted.size(); ++w) {
    WorkerDrift wd;
    wd.predicted = predicted[w];
    wd.measured = measured[w];
    wd.rel_err.pull = relative_error(measured[w].pull_s, predicted[w].pull_s);
    wd.rel_err.compute =
        relative_error(measured[w].compute_s, predicted[w].compute_s);
    wd.rel_err.push = relative_error(measured[w].push_s, predicted[w].push_s);
    wd.rel_err.sync = relative_error(measured[w].sync_s, predicted[w].sync_s);
    wd.rel_err.total =
        relative_error(measured[w].total(), predicted[w].total());
    for (double e : {wd.rel_err.pull, wd.rel_err.compute, wd.rel_err.push,
                     wd.rel_err.sync}) {
      report.max_abs_rel_err = std::max(report.max_abs_rel_err, std::abs(e));
      abs_sum += std::abs(e);
      ++terms;
    }
    report.workers.push_back(std::move(wd));
  }
  report.mean_abs_rel_err =
      terms > 0 ? abs_sum / static_cast<double>(terms) : 0.0;
  return report;
}

void publish_drift(MetricsRegistry& reg, const DriftReport& report,
                   const std::string& prefix) {
  for (std::size_t w = 0; w < report.workers.size(); ++w) {
    const std::string base = prefix + ".w" + std::to_string(w) + ".";
    const PhaseDrift& e = report.workers[w].rel_err;
    reg.gauge(base + "pull_rel_err").set(e.pull);
    reg.gauge(base + "compute_rel_err").set(e.compute);
    reg.gauge(base + "push_rel_err").set(e.push);
    reg.gauge(base + "sync_rel_err").set(e.sync);
    reg.gauge(base + "total_rel_err").set(e.total);
  }
  reg.gauge(prefix + ".max_abs_rel_err").set(report.max_abs_rel_err);
  reg.gauge(prefix + ".mean_abs_rel_err").set(report.mean_abs_rel_err);
}

std::string format_drift(const DriftReport& report,
                         const std::vector<std::string>& worker_names) {
  util::Table table({"worker", "pull", "compute", "push", "sync", "total"});
  auto pct = [](double e) {
    return (e >= 0 ? "+" : "") + util::Table::num(100.0 * e, 1) + "%";
  };
  for (std::size_t w = 0; w < report.workers.size(); ++w) {
    const PhaseDrift& e = report.workers[w].rel_err;
    table.add_row({w < worker_names.size() ? worker_names[w]
                                           : "w" + std::to_string(w),
                   pct(e.pull), pct(e.compute), pct(e.push), pct(e.sync),
                   pct(e.total)});
  }
  std::ostringstream os;
  os << "cost-model drift (measured vs Eq. 1-5 predictions):\n";
  table.print(os);
  os << "max |rel err| " << util::Table::num(100.0 * report.max_abs_rel_err, 1)
     << "%, mean " << util::Table::num(100.0 * report.mean_abs_rel_err, 1)
     << "%\n";
  return os.str();
}

}  // namespace hcc::obs
