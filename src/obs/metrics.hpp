// Thread-safe runtime metrics registry (counters, gauges, histograms).
//
// The paper's evaluation hinges on observing T_pull + T_c + T_push + T_sync
// per worker per epoch (Section 3.2, Eq. 1-5); this registry is where the
// instrumented runtime (core workers/server, comm backends) accumulates
// those observations.  Header-light by design: no dependency outside
// src/util, cheap relaxed atomics on the hot paths, one mutex only on
// metric *creation* — callers cache the returned references.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace hcc::obs {

/// Monotonically increasing event/byte counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-value-wins instantaneous measurement (e.g. a drift percentage).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: `bounds` are inclusive upper bounds of the first
/// N buckets; one implicit overflow bucket catches everything above the
/// last bound.  All updates are relaxed atomics, safe under concurrent
/// writers; readers see a consistent-enough snapshot for reporting.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double value) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  double mean() const noexcept {
    const std::uint64_t n = count();
    return n > 0 ? sum() / static_cast<double>(n) : 0.0;
  }
  const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// One count per bound plus the trailing overflow bucket.
  std::vector<std::uint64_t> bucket_counts() const;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Exponential seconds buckets from 1 us to ~100 s — the spread between a
/// microsecond-scale demo pull and a paper-scale compute phase.
const std::vector<double>& default_time_buckets();

/// Named metric store.  Lookup by name is mutex-guarded; the returned
/// references stay valid for the registry's lifetime, so hot paths resolve
/// once and cache the pointer.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name,
                       const std::vector<double>& bounds =
                           default_time_buckets());

  /// nullptr when the metric does not exist (never creates).
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

  std::vector<std::string> counter_names() const;
  std::vector<std::string> gauge_names() const;
  std::vector<std::string> histogram_names() const;

  /// Whole-registry JSON dump:
  ///   {"counters":{...},"gauges":{...},"histograms":{name:
  ///    {"count":..,"sum":..,"mean":..,"bounds":[..],"buckets":[..]}}}
  std::string to_json() const;

  /// Drops every metric (outstanding references become dangling — tests
  /// and process teardown only).
  void clear();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// The process-global registry the instrumented runtime writes to.
MetricsRegistry& registry();

/// Writes `registry.to_json()` to `path`; false on IO failure.
bool write_metrics_json(const MetricsRegistry& registry,
                        const std::string& path);

}  // namespace hcc::obs
