#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/json.hpp"

namespace hcc::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  buckets_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double value) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t bucket =
      static_cast<std::size_t>(it - bounds_.begin());  // == size() -> overflow
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> counts(bounds_.size() + 1);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

const std::vector<double>& default_time_buckets() {
  static const std::vector<double> buckets = [] {
    std::vector<double> b;
    for (double v = 1e-6; v < 200.0; v *= 4.0) b.push_back(v);
    return b;
  }();
  return buckets;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::vector<double>& bounds) {
  std::lock_guard lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(bounds);
  return *slot;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  std::lock_guard lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  std::lock_guard lock(mutex_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  std::lock_guard lock(mutex_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

namespace {
template <typename Map>
std::vector<std::string> keys_of(const Map& map) {
  std::vector<std::string> names;
  names.reserve(map.size());
  for (const auto& [name, metric] : map) names.push_back(name);
  return names;
}

/// JSON-safe number: %g keeps tiny durations readable and non-finite
/// values (which JSON cannot carry) degrade to null.
std::string num(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}
}  // namespace

std::vector<std::string> MetricsRegistry::counter_names() const {
  std::lock_guard lock(mutex_);
  return keys_of(counters_);
}

std::vector<std::string> MetricsRegistry::gauge_names() const {
  std::lock_guard lock(mutex_);
  return keys_of(gauges_);
}

std::vector<std::string> MetricsRegistry::histogram_names() const {
  std::lock_guard lock(mutex_);
  return keys_of(histograms_);
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard lock(mutex_);
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(name) << "\":" << c->value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(name) << "\":" << num(g->value());
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(name) << "\":{\"count\":" << h->count()
       << ",\"sum\":" << num(h->sum()) << ",\"mean\":" << num(h->mean())
       << ",\"bounds\":[";
    const auto& bounds = h->bounds();
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      if (i > 0) os << ',';
      os << num(bounds[i]);
    }
    os << "],\"buckets\":[";
    const auto counts = h->bucket_counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (i > 0) os << ',';
      os << counts[i];
    }
    os << "]}";
  }
  os << "}}";
  return os.str();
}

void MetricsRegistry::clear() {
  std::lock_guard lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

MetricsRegistry& registry() {
  static MetricsRegistry global;
  return global;
}

bool write_metrics_json(const MetricsRegistry& reg, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << reg.to_json() << '\n';
  return static_cast<bool>(out);
}

}  // namespace hcc::obs
