#include "comm/backend.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "obs/span.hpp"
#include "util/clock.hpp"

namespace hcc::comm {

std::uint64_t wire_checksum(std::span<const std::byte> bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a 64 offset basis
  for (const std::byte b : bytes) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001b3ULL;  // FNV prime
  }
  return h;
}

void CommBackend::ensure_metrics() {
  if (wire_bytes_counter_ != nullptr) return;
  auto& reg = obs::registry();
  const std::string base = "comm." + name() + ".";
  wire_bytes_counter_ = &reg.counter(base + "wire_bytes");
  transfers_counter_ = &reg.counter(base + "transfers");
  messages_counter_ = &reg.counter(base + "messages");
  codec_hist_ = &reg.histogram(base + "codec_s");
}

void CommBackend::cross_wire(std::span<std::byte> wire) {
  // Sender-side checksum travels out-of-band (8 wire bytes, accounted by
  // the caller); the tap models in-flight corruption; the receiver
  // verifies before decoding so a damaged payload never reaches Q.
  const std::uint64_t sent = checksum_ ? wire_checksum(wire) : 0;
  if (tap_) tap_(wire);
  if (checksum_ && wire_checksum(wire) != sent) {
    throw ChecksumError(name());
  }
}

void CommBackend::submit_chunk(std::span<const std::byte> wire) {
  // In-process "wire": the chunk lands in the receiver's queue immediately;
  // corruption (tap) and verification happen on delivery, so the sender's
  // bytes stay pristine for a byte-identical re-submit after a failure.
  if (resubmit_front_) {
    // Pristine re-send after a ChecksumError: it replaces the discarded
    // oldest chunk, ahead of any younger chunks still queued.
    pending_chunks_.emplace_front(wire.begin(), wire.end());
    resubmit_front_ = false;
  } else {
    pending_chunks_.emplace_back(wire.begin(), wire.end());
  }
}

std::span<const std::byte> CommBackend::await_chunk() {
  if (pending_chunks_.empty()) {
    throw std::runtime_error(name() + ": await_chunk with nothing in flight");
  }
  ensure_metrics();
  awaited_chunk_ = std::move(pending_chunks_.front());
  pending_chunks_.pop_front();
  // Per-chunk wire handling mirrors transfer(): tap, then the out-of-band
  // checksum (8 extra billed bytes per chunk when enabled).
  try {
    cross_wire(awaited_chunk_);
  } catch (...) {
    resubmit_front_ = true;  // the corrupt chunk is gone; re-send goes first
    throw;
  }
  const std::size_t billed =
      awaited_chunk_.size() + (checksum_enabled() ? 8 : 0);
  stats_.wire_bytes += billed;
  stats_.copies += 1;
  wire_bytes_counter_->add(billed);
  transfers_counter_->add(1);
  return awaited_chunk_;
}

void ShmComm::transfer(std::span<const float> src, std::span<float> dst,
                       Codec& codec) {
  assert(src.size() == dst.size());
  ensure_metrics();
  obs::ScopedSpan span("transfer", obs::kCommCategory);
  const std::size_t wire = codec.encoded_bytes(src.size());
  if (shared_buffer_.size() < wire) shared_buffer_.resize(wire);
  // Sender encodes straight into the shared mapping; receiver decodes
  // straight out of it.  One copy across the bus (Section 3.5: "the data
  // copy usually happens only once in one epoch").
  util::Stopwatch codec_watch;
  codec.encode(src, shared_buffer_);
  cross_wire(std::span<std::byte>(shared_buffer_.data(), wire));
  codec.decode(std::span<const std::byte>(shared_buffer_.data(), wire), dst);
  codec_hist_->observe(codec_watch.seconds());
  const std::size_t billed = wire + (checksum_enabled() ? 8 : 0);
  stats_.wire_bytes += billed;
  stats_.copies += 1;
  wire_bytes_counter_->add(billed);
  transfers_counter_->add(1);
  span.arg("bytes", std::to_string(billed));
}

void BrokerComm::transfer(std::span<const float> src, std::span<float> dst,
                          Codec& codec) {
  assert(src.size() == dst.size());
  ensure_metrics();
  obs::ScopedSpan span("transfer", obs::kCommCategory);
  const std::size_t wire = codec.encoded_bytes(src.size());

  // Copy 1: serialize into the sender's staging area.
  if (send_staging_.size() < wire) send_staging_.resize(wire);
  util::Stopwatch codec_watch;
  codec.encode(src, send_staging_);
  double codec_s = codec_watch.seconds();
  const std::uint64_t sent_checksum =
      checksum_enabled()
          ? wire_checksum(std::span<const std::byte>(send_staging_.data(),
                                                     wire))
          : 0;

  // Copy 2: chunk the staging area into broker messages.
  std::size_t offset = 0;
  while (offset < wire) {
    const std::size_t len = std::min(message_bytes_, wire - offset);
    broker_queue_.emplace_back(send_staging_.begin() + offset,
                               send_staging_.begin() + offset + len);
    offset += len;
    stats_.messages += 1;
    messages_counter_->add(1);
  }

  // Copy 3: the broker delivers messages into the receiver's buffer.
  if (recv_buffer_.size() < wire) recv_buffer_.resize(wire);
  offset = 0;
  while (!broker_queue_.empty()) {
    auto& msg = broker_queue_.front();
    std::memcpy(recv_buffer_.data() + offset, msg.data(), msg.size());
    offset += msg.size();
    broker_queue_.pop_front();
  }

  // The tap corrupts the delivered bytes; the receiver verifies the
  // sender's out-of-band checksum before deserializing.
  if (tap_) tap_(std::span<std::byte>(recv_buffer_.data(), wire));
  if (checksum_enabled() &&
      wire_checksum(std::span<const std::byte>(recv_buffer_.data(), wire)) !=
          sent_checksum) {
    throw ChecksumError(name());
  }

  // Deserialize out of the receive buffer.
  codec_watch.reset();
  codec.decode(std::span<const std::byte>(recv_buffer_.data(), wire), dst);
  codec_s += codec_watch.seconds();
  codec_hist_->observe(codec_s);
  const std::size_t billed = wire + (checksum_enabled() ? 8 : 0);
  stats_.wire_bytes += billed;
  stats_.copies += 3;
  wire_bytes_counter_->add(billed);
  transfers_counter_->add(1);
  span.arg("bytes", std::to_string(billed));
}

}  // namespace hcc::comm
