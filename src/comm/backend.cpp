#include "comm/backend.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace hcc::comm {

void ShmComm::transfer(std::span<const float> src, std::span<float> dst,
                       const Codec& codec) {
  assert(src.size() == dst.size());
  const std::size_t wire = codec.encoded_bytes(src.size());
  if (shared_buffer_.size() < wire) shared_buffer_.resize(wire);
  // Sender encodes straight into the shared mapping; receiver decodes
  // straight out of it.  One copy across the bus (Section 3.5: "the data
  // copy usually happens only once in one epoch").
  codec.encode(src, shared_buffer_);
  codec.decode(std::span<const std::byte>(shared_buffer_.data(), wire), dst);
  stats_.wire_bytes += wire;
  stats_.copies += 1;
}

void BrokerComm::transfer(std::span<const float> src, std::span<float> dst,
                          const Codec& codec) {
  assert(src.size() == dst.size());
  const std::size_t wire = codec.encoded_bytes(src.size());

  // Copy 1: serialize into the sender's staging area.
  if (send_staging_.size() < wire) send_staging_.resize(wire);
  codec.encode(src, send_staging_);

  // Copy 2: chunk the staging area into broker messages.
  std::size_t offset = 0;
  while (offset < wire) {
    const std::size_t len = std::min(message_bytes_, wire - offset);
    broker_queue_.emplace_back(send_staging_.begin() + offset,
                               send_staging_.begin() + offset + len);
    offset += len;
    stats_.messages += 1;
  }

  // Copy 3: the broker delivers messages into the receiver's buffer.
  if (recv_buffer_.size() < wire) recv_buffer_.resize(wire);
  offset = 0;
  while (!broker_queue_.empty()) {
    auto& msg = broker_queue_.front();
    std::memcpy(recv_buffer_.data() + offset, msg.data(), msg.size());
    offset += msg.size();
    broker_queue_.pop_front();
  }

  // Deserialize out of the receive buffer.
  codec.decode(std::span<const std::byte>(recv_buffer_.data(), wire), dst);
  stats_.wire_bytes += wire;
  stats_.copies += 3;
}

}  // namespace hcc::comm
