// Communication strategy planner.
//
// Combines the three optimizations of Section 3.4 — payload reduction
// (Strategy 1), FP16 compression (Strategy 2) and asynchronous multi-stream
// pipelines (Strategy 3) — plus the backend choice (COMM vs COMM-P) into a
// per-worker sim::CommPlan for the timing engine, and constructs the
// matching functional codec/backend objects for the real data path.
#pragma once

#include <cstdint>
#include <memory>

#include "comm/backend.hpp"
#include "comm/payload.hpp"
#include "comm/transport.hpp"
#include "sim/timing.hpp"

namespace hcc::comm {

enum class BackendKind { kShm, kBroker };

/// User-facing communication configuration.
struct CommConfig {
  bool reduce_payload = true;  ///< Strategy 1: Q-only / P-only
  bool fp16 = true;            ///< Strategy 2: binary16 wire encoding
  /// Wire codec selector.  kAuto (the default) defers to the legacy `fp16`
  /// flag above, keeping existing configs bit-identical; kInt8/kTwoBit pick
  /// the error-feedback sub-FP16 codecs (see comm/codec.hpp) — each worker
  /// then owns stateful per-direction codec instances.
  CodecKind codec = CodecKind::kAuto;
  std::uint32_t codec_threads = 0;  ///< Strategy 2's "multi-threaded" AVX
                                    ///< conversion: >= 2 gives the codec an
                                    ///< internal pool that slices large
                                    ///< batches; 0/1 converts inline
  std::uint32_t streams = 1;   ///< Strategy 3: requested pipeline depth;
                               ///< capped by each device's copy engines
  bool sparse = false;         ///< "Strategy 4" (extension): transfer only
                               ///< the Q rows the worker's slice touches —
                               ///< attacks the dimension-bound cost the
                               ///< paper's Section 4.6 identifies.  Adds a
                               ///< 4-byte row index per transmitted row.
  bool checksum = false;       ///< Fault-tolerance extension: out-of-band
                               ///< payload checksum per transfer (8 wire
                               ///< bytes); transfer() throws ChecksumError
                               ///< on corruption.  Enabled by HccMf when a
                               ///< fault plan / checkpoint dir is active.
  /// Chunked-streaming extension: how many row-aligned chunks of one P/Q
  /// transfer may be in flight at once (comm/pipeline.hpp).  Depth 1 (the
  /// default) is the legacy single-shot path, bit-identical on the wire;
  /// depth > 1 overlaps chunk i's encode with chunk i-1's wire transfer
  /// and decode-side commit.
  std::uint32_t pipeline_depth = 1;
  BackendKind backend = BackendKind::kShm;

  /// Elastic-transport extension: what kind of link the pull/push wire is.
  /// The default (kInProcess) routes through the legacy backends above and
  /// leaves the wire traffic bit-identical to previous releases; the other
  /// kinds interpose a sequence-numbered session (comm/session.hpp) over a
  /// simulated-latency or chaos link.
  TransportConfig transport;

  // Timing-model constants, calibrated against Table 5 (see EXPERIMENTS.md):
  /// Fraction of peak bus bandwidth COMM's single-copy path sustains.
  double shm_bus_efficiency = 0.8;
  /// How much slower COMM-P is than COMM at equal payload (extra copies,
  /// kernel crossings, per-message overhead).
  double broker_penalty = 6.67;
  /// Above-linear FP16 gain the paper measures ("more data being cached").
  double fp16_bus_bonus = 1.5;
  /// Quantized-codec stage rates over RAW fp32 bytes, feeding the Eq. 1
  /// overlap term when pipeline_depth > 1.  The EF commit is memory-bound
  /// (~3.3 GB/s measured, see ROADMAP); encode is a little faster because
  /// the delta pass reads less state than the commit writes.
  double codec_encode_gbs = 4.0;
  double codec_commit_gbs = 3.3;
};

/// Payload mode after applying (or not applying) Strategy 1.
PayloadMode effective_mode(const CommConfig& config,
                           const sim::DatasetShape& shape);

/// Resolves CommConfig::codec, mapping kAuto onto the legacy fp16 flag.
/// Never returns kAuto.
CodecKind effective_codec(const CommConfig& config);

/// The codec kind the *pull* direction (server -> worker parameter
/// broadcast) actually uses.  Ternary compression is an update codec: on
/// the push stream it reaches RMSE parity with fp16, but ternarizing the
/// parameters a worker trains against injects noise proportional to the
/// per-epoch factor movement and measurably stalls convergence (tenths of
/// RMSE on MovieLens-scale runs).  kTwoBit pulls therefore fall back to
/// fp16 — the standard asymmetry of gradient-compression systems — while
/// int8 and coarser codecs ride both directions.
CodecKind pull_codec_kind(const CommConfig& config);

/// Pipeline depth for a device: min(requested, copy engines).  Devices
/// without a copy engine (plain CPUs) cannot overlap, per Section 3.4.
std::uint32_t effective_streams(const CommConfig& config,
                                const sim::DeviceSpec& device);

/// Builds the timing plan for one worker-epoch.  `share` (the worker's
/// nnz fraction) only matters when config.sparse is set: it sizes the
/// touched-row estimate.
sim::CommPlan make_comm_plan(const CommConfig& config,
                             const sim::DatasetShape& shape,
                             const sim::DeviceSpec& device,
                             bool last_epoch = false, double share = 1.0);

/// Functional objects matching the config.  `row_elems` sets the quantized
/// codecs' scale-block size — pass the factor rank k when known (one absmax
/// scale per Q row); 0 keeps their default.  Stateful codecs come back
/// fresh (first transfer is a keyframe), one instance per link direction.
std::unique_ptr<Codec> make_codec(const CommConfig& config,
                                  std::size_t row_elems = 0);

/// Codec for the pull stream: make_codec with pull_codec_kind applied.
std::unique_ptr<Codec> make_pull_codec(const CommConfig& config,
                                       std::size_t row_elems = 0);
std::unique_ptr<CommBackend> make_backend(const CommConfig& config);

/// Worker-aware overload: with a non-default transport kind the backend is
/// a SessionComm over that worker's link (the chaos schedule is addressed
/// by worker id); kInProcess falls back to the legacy overload.
std::unique_ptr<CommBackend> make_backend(const CommConfig& config,
                                          std::uint32_t worker);

}  // namespace hcc::comm
