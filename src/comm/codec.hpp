// Wire codecs for feature-matrix transfers.
//
// Strategy 2 of Section 3.4: feature matrices do not need binary32 precision
// to represent coarse rating scales, so COMM can compress them to binary16
// on the wire.  Fp32Codec is the pass-through; Fp16Codec halves the wire
// bytes at the cost of one rounding per value.  The paper implements the
// conversion "with AVX intrinsics, multi-threaded": Fp16Codec converts
// through the runtime-dispatched SIMD backend (src/simd/) and can slice
// large batches across an internal util::ThreadPool.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/thread_pool.hpp"

namespace hcc::comm {

/// Encodes/decodes a float array to/from wire bytes.  Implementations are
/// stateless and thread-compatible (const operations can run concurrently).
class Codec {
 public:
  virtual ~Codec() = default;

  /// Bytes needed on the wire for `n_floats` values.
  virtual std::size_t encoded_bytes(std::size_t n_floats) const = 0;

  /// Encodes src into dst; dst.size() must be >= encoded_bytes(src.size()).
  virtual void encode(std::span<const float> src,
                      std::span<std::byte> dst) const = 0;

  /// Decodes exactly dst.size() floats from src.
  virtual void decode(std::span<const std::byte> src,
                      std::span<float> dst) const = 0;

  virtual std::string name() const = 0;
};

/// Pass-through binary32 codec (memcpy on the wire).
class Fp32Codec final : public Codec {
 public:
  std::size_t encoded_bytes(std::size_t n_floats) const override {
    return n_floats * 4;
  }
  void encode(std::span<const float> src,
              std::span<std::byte> dst) const override;
  void decode(std::span<const std::byte> src,
              std::span<float> dst) const override;
  std::string name() const override { return "fp32"; }
};

/// Binary16 codec (Strategy 2).  Values round to nearest-even; the relative
/// error bound util::kFp16RelativeError is what the convergence tests check
/// training tolerates.  Conversion runs on the dispatched SIMD kernels
/// (F16C / AVX-512 vcvtps2ph/vcvtph2ps, NEON fcvt, scalar fallback), which
/// are bit-exact against the scalar codec in util/fp16.hpp.
class Fp16Codec final : public Codec {
 public:
  /// `threads` >= 2 spawns an internal pool that slices batches above
  /// kParallelThreshold floats across that many workers (the paper's
  /// "multi-threaded" variant); 0 or 1 converts inline on the caller.
  explicit Fp16Codec(std::size_t threads = 0);

  std::size_t encoded_bytes(std::size_t n_floats) const override {
    return n_floats * 2;
  }
  void encode(std::span<const float> src,
              std::span<std::byte> dst) const override;
  void decode(std::span<const std::byte> src,
              std::span<float> dst) const override;
  std::string name() const override { return "fp16"; }

  /// Batches below this many floats always convert inline: the pool's
  /// wake/join round trip costs more than the conversion itself.
  static constexpr std::size_t kParallelThreshold = 1u << 15;

 private:
  std::shared_ptr<util::ThreadPool> pool_;  ///< null = inline conversion
};

}  // namespace hcc::comm
