// Wire codecs for feature-matrix transfers.
//
// Strategy 2 of Section 3.4: feature matrices do not need binary32 precision
// to represent coarse rating scales, so COMM can compress them on the wire.
// Fp32Codec is the pass-through; Fp16Codec halves the wire bytes at the cost
// of one rounding per value.  The paper implements the conversion "with AVX
// intrinsics, multi-threaded": every codec converts through the
// runtime-dispatched SIMD backend (src/simd/) and can slice large batches
// across an internal util::ThreadPool.
//
// Below FP16 the rounding error is no longer convergence-neutral, so the
// sub-FP16 codecs (Int8Codec, TwoBitCodec) are *error-feedback* delta
// coders in the TernGrad / mxnet two_bit_quantize tradition: the encoder
// quantizes (src - ref) + residual against an internal reference tracking
// the decoded stream, and whatever the grid could not represent accumulates
// in the residual and replays on the next transfer.  That makes them
// stateful per link direction — each (worker, direction) needs its own
// instance, and the same instance must see both ends of a transfer (true
// for every backend here: encode and decode happen inside one transfer()).
//
// State commits only at decode: encode() writes nothing but the scratch
// delta, so a transfer aborted between encode and decode (checksum failure,
// chaos-link replay) leaves the codec unchanged and the retry re-encodes
// byte-identically.  The first transfer of a stream — and the first after
// reset_state() or a size change — is a lossless binary32 keyframe that
// seeds the reference; encoded_bytes() reflects the mode, so callers that
// size wire buffers per transfer stay correct.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/thread_pool.hpp"

namespace hcc::comm {

/// The wire-codec family (CommConfig::codec).  kAuto defers to the legacy
/// CommConfig::fp16 flag, keeping old configs bit-identical.
enum class CodecKind {
  kAuto,
  kFp32,
  kFp16,
  kInt8,    ///< error-feedback int8, per-row absmax scales (~4x)
  kTwoBit,  ///< error-feedback {-t, 0, +t} threshold codes (~16x)
};

/// Stable lower-case name ("auto", "fp32", "fp16", "int8", "2bit").
const char* codec_kind_name(CodecKind kind) noexcept;

/// Parses a codec_kind_name (kAuto is spelled "auto"); false on no match.
bool parse_codec_kind(std::string_view name, CodecKind& out) noexcept;

/// Encodes/decodes a float array to/from wire bytes.  The public
/// encode/decode are non-virtual wrappers that feed the process-wide
/// comm.codec.{encode_ms,decode_ms,wire_bytes,raw_bytes} metrics around the
/// virtual implementations.  Stateless codecs are thread-compatible;
/// stateful() codecs must be confined to one link direction (their owner's
/// transfer sequence provides the happens-before).
class Codec {
 public:
  virtual ~Codec() = default;

  /// Bytes needed on the wire for `n_floats` values *now* — stateful codecs
  /// answer for the upcoming transfer (keyframe vs steady state).
  virtual std::size_t encoded_bytes(std::size_t n_floats) const = 0;

  /// Encodes src into dst; dst.size() must be >= encoded_bytes(src.size()).
  void encode(std::span<const float> src, std::span<std::byte> dst);

  /// Decodes exactly dst.size() floats from src.  For stateful codecs this
  /// is also the commit point: reference and residual update here, never in
  /// encode().
  void decode(std::span<const std::byte> src, std::span<float> dst);

  virtual std::string name() const = 0;

  /// True when the codec carries per-stream state (error feedback).
  virtual bool stateful() const noexcept { return false; }

  /// Drops all stream state; the next transfer is a keyframe.  Call when
  /// the transported array changes meaning (e.g. a repartition reshuffles
  /// the sparse packed layout).  No-op for stateless codecs.
  virtual void reset_state() {}

 protected:
  virtual void encode_impl(std::span<const float> src,
                           std::span<std::byte> dst) = 0;
  virtual void decode_impl(std::span<const std::byte> src,
                           std::span<float> dst) = 0;

  /// Bridges for adapter codecs (SparseIndexedCodec): invoke another
  /// codec's raw implementation without re-entering the metric-feeding
  /// public wrappers, so a wrapped transfer is counted exactly once.
  static void delegate_encode(Codec& inner, std::span<const float> src,
                              std::span<std::byte> dst) {
    inner.encode_impl(src, dst);
  }
  static void delegate_decode(Codec& inner, std::span<const std::byte> src,
                              std::span<float> dst) {
    inner.decode_impl(src, dst);
  }
};

/// Pass-through binary32 codec (memcpy on the wire).
class Fp32Codec final : public Codec {
 public:
  std::size_t encoded_bytes(std::size_t n_floats) const override {
    return n_floats * 4;
  }
  std::string name() const override { return "fp32"; }

 protected:
  void encode_impl(std::span<const float> src,
                   std::span<std::byte> dst) override;
  void decode_impl(std::span<const std::byte> src,
                   std::span<float> dst) override;
};

/// Binary16 codec (Strategy 2).  Values round to nearest-even; the relative
/// error bound util::kFp16RelativeError is what the convergence tests check
/// training tolerates.  Conversion runs on the dispatched SIMD kernels
/// (F16C / AVX-512 vcvtps2ph/vcvtph2ps, NEON fcvt, scalar fallback), which
/// are bit-exact against the scalar codec in util/fp16.hpp.
class Fp16Codec final : public Codec {
 public:
  /// `threads` >= 2 spawns an internal pool that slices batches above
  /// kParallelThreshold floats across that many workers (the paper's
  /// "multi-threaded" variant); 0 or 1 converts inline on the caller.
  explicit Fp16Codec(std::size_t threads = 0);

  std::size_t encoded_bytes(std::size_t n_floats) const override {
    return n_floats * 2;
  }
  std::string name() const override { return "fp16"; }

  /// Batches below this many floats always convert inline: the pool's
  /// wake/join round trip costs more than the conversion itself.
  static constexpr std::size_t kParallelThreshold = 1u << 15;

 protected:
  void encode_impl(std::span<const float> src,
                   std::span<std::byte> dst) override;
  void decode_impl(std::span<const std::byte> src,
                   std::span<float> dst) override;

 private:
  std::shared_ptr<util::ThreadPool> pool_;  ///< null = inline conversion
};

/// Shared machinery of the error-feedback quantizers: keyframe/steady-state
/// framing, the (src - ref) + residual delta, per-block absmax scales, and
/// block-granular slicing across the codec thread pool.  Blocks are
/// independent (one scale each), so the threaded and inline variants
/// produce identical wire bytes.
///
/// Steady-state wire layout, for n floats in blocks of block_elems:
///   [float scale_0][payload_0][float scale_1][payload_1]...
/// where payload_i is the subclass's quantized block (the last block may be
/// shorter).  Keyframes are raw binary32 (4n bytes), distinguished by state,
/// not by a wire flag: both ends share one instance, so both agree.
class QuantizedCodec : public Codec {
 public:
  std::size_t encoded_bytes(std::size_t n_floats) const override;
  bool stateful() const noexcept override { return true; }
  void reset_state() override;

  std::size_t block_elems() const noexcept { return block_elems_; }

  /// Same inline-below threshold as Fp16Codec (here in blocks x elems).
  static constexpr std::size_t kParallelThreshold =
      Fp16Codec::kParallelThreshold;

 protected:
  /// `block_elems` is the scale granularity — the factor rank k when known
  /// (one scale per Q row); `threads` as in Fp16Codec.
  QuantizedCodec(std::size_t block_elems, std::size_t threads);

  void encode_impl(std::span<const float> src,
                   std::span<std::byte> dst) final;
  void decode_impl(std::span<const std::byte> src, std::span<float> dst) final;

  /// Payload bytes (excluding the 4-byte scale) for a block of `elems`.
  virtual std::size_t block_payload_bytes(std::size_t elems) const = 0;
  /// Quantizes block `e[0, elems)` into out = [scale][payload].
  virtual void encode_block(const float* e, std::size_t elems,
                            std::byte* out) = 0;
  /// Dequantizes a block and commits: dst = ref + dq, residual = e - dq,
  /// ref = dst (see the KernelTable *_commit contract).
  virtual void decode_block(const std::byte* in, std::size_t elems,
                            const float* e, float* ref, float* residual,
                            float* dst) = 0;

 private:
  bool keyframe(std::size_t n_floats) const noexcept {
    return ref_.size() != n_floats;
  }
  std::size_t block_count(std::size_t n_floats) const noexcept {
    return (n_floats + block_elems_ - 1) / block_elems_;
  }
  /// Byte offset of block `b` in the steady-state wire.
  std::size_t block_offset(std::size_t b) const noexcept {
    return b * (4 + block_payload_bytes(block_elems_));
  }
  void for_each_block(std::size_t n_floats,
                      const std::function<void(std::size_t lo_block,
                                               std::size_t hi_block)>& body);

  std::size_t block_elems_;
  std::shared_ptr<util::ThreadPool> pool_;  ///< null = inline conversion
  std::vector<float> ref_;       ///< decoded-stream reference (both ends)
  std::vector<float> residual_;  ///< error feedback, replayed next encode
  std::vector<float> e_;         ///< encode-side delta scratch
};

/// Error-feedback int8: per-block absmax scales, 1 byte per value
/// (~(4 + 1/B)x under fp32 at block size B; 3.88x at the default k = 128).
class Int8Codec final : public QuantizedCodec {
 public:
  explicit Int8Codec(std::size_t block_elems = 128, std::size_t threads = 0)
      : QuantizedCodec(block_elems, threads) {}
  std::string name() const override { return "int8"; }

 protected:
  std::size_t block_payload_bytes(std::size_t elems) const override {
    return elems;
  }
  void encode_block(const float* e, std::size_t elems,
                    std::byte* out) override;
  void decode_block(const std::byte* in, std::size_t elems, const float* e,
                    float* ref, float* residual, float* dst) override;
};

/// Sparse-aware framing for the quantized sparse push path ("Strategy 4"
/// meets the sub-FP16 codecs): the packed value block rides the inner
/// error-feedback codec unchanged, and the wire additionally carries the
/// row-index list that gives the packed slots meaning on a real link.
///
/// Wire layout:  [u32 row_count][u32 index x row_count][inner wire bytes].
/// The indices are raw (uncompressed) — they are 4/(4k) of the fp32 payload
/// at rank k, exactly the `4 x touched(n)` term the cost model already
/// bills for sparse transfers.  The decoder verifies the received header
/// against the expected row set before letting the inner codec commit;
/// a mismatch throws (the packed slots would be scattered to the wrong Q
/// rows), surfacing like a checksum failure so the retry machinery takes
/// over.
///
/// Statefulness forwards to the inner codec: reset_state() re-keyframes it,
/// and encode writes nothing but the inner scratch, so aborted transfers
/// retry byte-identically — indices included, since set_rows is the
/// caller's and unchanged across a retry.
class SparseIndexedCodec final : public Codec {
 public:
  /// `row_elems` is the packed row width (the factor rank k); n_floats must
  /// always be rows * row_elems.
  SparseIndexedCodec(std::unique_ptr<Codec> inner, std::size_t row_elems);

  /// Sets the row-index list for subsequent transfers (the worker's touched
  /// set, or one chunk's slice of it).  The span must stay valid across the
  /// transfer; it is re-armed per epoch by the owner.
  void set_rows(std::span<const std::uint32_t> rows) { rows_ = rows; }

  std::size_t encoded_bytes(std::size_t n_floats) const override;
  std::string name() const override { return "sparse+" + inner_->name(); }
  bool stateful() const noexcept override { return inner_->stateful(); }
  void reset_state() override { inner_->reset_state(); }

  /// Header bytes preceding the inner payload for `rows` packed rows.
  static std::size_t header_bytes(std::size_t rows) { return 4 + 4 * rows; }

 protected:
  void encode_impl(std::span<const float> src,
                   std::span<std::byte> dst) override;
  void decode_impl(std::span<const std::byte> src,
                   std::span<float> dst) override;

 private:
  std::unique_ptr<Codec> inner_;
  std::size_t row_elems_;
  std::span<const std::uint32_t> rows_;
};

/// Error-feedback 2-bit threshold codec: values quantize to {-t, 0, +t}
/// with t = absmax/2 per block, 4 codes per byte (~14x under fp32 at
/// k = 128).  Convergence leans entirely on the residual replay.
///
/// This is an *update* codec: the trainers apply it to the push stream
/// only and pull parameters at fp16 (see comm::pull_codec_kind) — a
/// ternarized parameter broadcast stalls convergence, ternarized updates
/// do not.
class TwoBitCodec final : public QuantizedCodec {
 public:
  explicit TwoBitCodec(std::size_t block_elems = 128, std::size_t threads = 0)
      : QuantizedCodec(block_elems, threads) {}
  std::string name() const override { return "2bit"; }

 protected:
  std::size_t block_payload_bytes(std::size_t elems) const override {
    return (elems + 3) / 4;
  }
  void encode_block(const float* e, std::size_t elems,
                    std::byte* out) override;
  void decode_block(const std::byte* in, std::size_t elems, const float* e,
                    float* ref, float* residual, float* dst) override;
};

}  // namespace hcc::comm
