#include "comm/strategy.hpp"

#include <algorithm>

#include "comm/session.hpp"

namespace hcc::comm {

PayloadMode effective_mode(const CommConfig& config,
                           const sim::DatasetShape& shape) {
  if (!config.reduce_payload) return PayloadMode::kPQ;
  return choose_payload(shape.m, shape.n);
}

std::uint32_t effective_streams(const CommConfig& config,
                                const sim::DeviceSpec& device) {
  return std::max(1u, std::min(config.streams, device.copy_streams));
}

sim::CommPlan make_comm_plan(const CommConfig& config,
                             const sim::DatasetShape& shape,
                             const sim::DeviceSpec& device, bool last_epoch,
                             double share) {
  const PayloadMode mode = effective_mode(config, shape);
  sim::CommPlan plan;
  plan.pull_bytes = wire_bytes(pull_elements(shape, mode), config.fp16);
  plan.push_bytes =
      wire_bytes(push_elements(shape, mode, last_epoch), config.fp16);
  // The server merges every pushed feature at FP32 width regardless of the
  // wire encoding (Eq. 3 counts elements, not wire bytes).
  plan.sync_bytes = static_cast<double>(
      push_elements(shape, mode, last_epoch) * 4);

  // Strategy 4 (extension): only the touched Q rows travel and merge.  The
  // exchanged-dimension term shrinks from n to touched(n); the final P&Q
  // push and the P side are unaffected (P rows are worker-exclusive).
  if (config.sparse && mode == PayloadMode::kQOnly && !last_epoch) {
    const double frac = expected_touched_fraction(
        static_cast<double>(shape.nnz) * share, static_cast<double>(shape.n));
    const double index_bytes = 4.0 * frac * static_cast<double>(shape.n);
    plan.pull_bytes = plan.pull_bytes * frac + index_bytes;
    plan.push_bytes = plan.push_bytes * frac + index_bytes;
    plan.sync_bytes *= frac;
  }

  double efficiency = config.shm_bus_efficiency;
  if (config.backend == BackendKind::kBroker) {
    efficiency /= config.broker_penalty;
  }
  if (config.fp16) efficiency *= config.fp16_bus_bonus;
  plan.bus_efficiency = efficiency;
  plan.streams = effective_streams(config, device);
  return plan;
}

std::unique_ptr<Codec> make_codec(const CommConfig& config) {
  if (config.fp16) return std::make_unique<Fp16Codec>(config.codec_threads);
  return std::make_unique<Fp32Codec>();
}

std::unique_ptr<CommBackend> make_backend(const CommConfig& config) {
  std::unique_ptr<CommBackend> backend;
  if (config.backend == BackendKind::kBroker) {
    backend = std::make_unique<BrokerComm>();
  } else {
    backend = std::make_unique<ShmComm>();
  }
  backend->set_checksum_enabled(config.checksum);
  return backend;
}

std::unique_ptr<CommBackend> make_backend(const CommConfig& config,
                                          std::uint32_t worker) {
  if (config.transport.kind == TransportKind::kInProcess) {
    // Bit-identical guarantee: the default transport never interposes the
    // session protocol on the single-box wire path.
    return make_backend(config);
  }
  auto backend = std::make_unique<SessionComm>(
      make_transport(config.transport, worker), config.transport, worker);
  backend->set_checksum_enabled(config.checksum);
  return backend;
}

}  // namespace hcc::comm
