#include "comm/strategy.hpp"

#include <algorithm>

#include "comm/session.hpp"

namespace hcc::comm {

PayloadMode effective_mode(const CommConfig& config,
                           const sim::DatasetShape& shape) {
  if (!config.reduce_payload) return PayloadMode::kPQ;
  return choose_payload(shape.m, shape.n);
}

std::uint32_t effective_streams(const CommConfig& config,
                                const sim::DeviceSpec& device) {
  return std::max(1u, std::min(config.streams, device.copy_streams));
}

CodecKind effective_codec(const CommConfig& config) {
  if (config.codec != CodecKind::kAuto) return config.codec;
  return config.fp16 ? CodecKind::kFp16 : CodecKind::kFp32;
}

CodecKind pull_codec_kind(const CommConfig& config) {
  const CodecKind kind = effective_codec(config);
  return kind == CodecKind::kTwoBit ? CodecKind::kFp16 : kind;
}

sim::CommPlan make_comm_plan(const CommConfig& config,
                             const sim::DatasetShape& shape,
                             const sim::DeviceSpec& device, bool last_epoch,
                             double share) {
  const PayloadMode mode = effective_mode(config, shape);
  const CodecKind kind = effective_codec(config);
  sim::CommPlan plan;
  // Pull and push may ride different codecs (2-bit is push-only).
  plan.pull_bytes = wire_bytes(pull_elements(shape, mode),
                               pull_codec_kind(config), shape.k);
  plan.push_bytes =
      wire_bytes(push_elements(shape, mode, last_epoch), kind, shape.k);
  // The server merges every pushed feature at FP32 width regardless of the
  // wire encoding (Eq. 3 counts elements, not wire bytes).
  plan.sync_bytes = static_cast<double>(
      push_elements(shape, mode, last_epoch) * 4);
  plan.pull_raw_bytes = static_cast<double>(pull_elements(shape, mode) * 4);
  plan.push_raw_bytes =
      static_cast<double>(push_elements(shape, mode, last_epoch) * 4);

  // Strategy 4 (extension): only the touched Q rows travel and merge.  The
  // exchanged-dimension term shrinks from n to touched(n); the final P&Q
  // push and the P side are unaffected (P rows are worker-exclusive).
  if (config.sparse && mode == PayloadMode::kQOnly && !last_epoch) {
    const double frac = expected_touched_fraction(
        static_cast<double>(shape.nnz) * share, static_cast<double>(shape.n));
    const double index_bytes = 4.0 * frac * static_cast<double>(shape.n);
    plan.pull_bytes = plan.pull_bytes * frac + index_bytes;
    plan.push_bytes = plan.push_bytes * frac + index_bytes;
    plan.sync_bytes *= frac;
    plan.pull_raw_bytes *= frac;
    plan.push_raw_bytes *= frac;
  }

  double efficiency = config.shm_bus_efficiency;
  if (config.backend == BackendKind::kBroker) {
    efficiency /= config.broker_penalty;
  }
  // The paper's "more data being cached" bonus comes from the payload
  // shrinking, so every compressed codec earns it, not just fp16.
  if (kind != CodecKind::kFp32) efficiency *= config.fp16_bus_bonus;
  plan.bus_efficiency = efficiency;
  plan.streams = effective_streams(config, device);

  // Chunked streaming (Eq. 1 overlap term): stage rates are only modeled
  // for the stateful quantized codecs, whose encode (EF delta + quantize)
  // and commit (dequantize + reference update) are the heavy stages worth
  // hiding behind the wire.  fp32/fp16 keep rates at 0 — the cost model
  // then falls back to the legacy wire-only prediction, so depth > 1 with
  // an unmodeled codec predicts exactly what depth 1 does.
  plan.pipeline_depth = std::max(1u, config.pipeline_depth);
  if (plan.pipeline_depth > 1 &&
      (kind == CodecKind::kInt8 || kind == CodecKind::kTwoBit)) {
    plan.encode_gbs = config.codec_encode_gbs;
    plan.commit_gbs = config.codec_commit_gbs;
  }
  return plan;
}

std::unique_ptr<Codec> make_codec(const CommConfig& config,
                                  std::size_t row_elems) {
  switch (effective_codec(config)) {
    case CodecKind::kFp16:
      return std::make_unique<Fp16Codec>(config.codec_threads);
    case CodecKind::kInt8:
      return std::make_unique<Int8Codec>(row_elems, config.codec_threads);
    case CodecKind::kTwoBit:
      return std::make_unique<TwoBitCodec>(row_elems, config.codec_threads);
    case CodecKind::kAuto:
    case CodecKind::kFp32:
      break;
  }
  return std::make_unique<Fp32Codec>();
}

std::unique_ptr<Codec> make_pull_codec(const CommConfig& config,
                                       std::size_t row_elems) {
  CommConfig pull = config;
  pull.codec = pull_codec_kind(config);
  return make_codec(pull, row_elems);
}

std::unique_ptr<CommBackend> make_backend(const CommConfig& config) {
  std::unique_ptr<CommBackend> backend;
  if (config.backend == BackendKind::kBroker) {
    backend = std::make_unique<BrokerComm>();
  } else {
    backend = std::make_unique<ShmComm>();
  }
  backend->set_checksum_enabled(config.checksum);
  return backend;
}

std::unique_ptr<CommBackend> make_backend(const CommConfig& config,
                                          std::uint32_t worker) {
  if (config.transport.kind == TransportKind::kInProcess) {
    // Bit-identical guarantee: the default transport never interposes the
    // session protocol on the single-box wire path.
    return make_backend(config);
  }
  auto backend = std::make_unique<SessionComm>(
      make_transport(config.transport, worker), config.transport, worker);
  backend->set_checksum_enabled(config.checksum);
  return backend;
}

}  // namespace hcc::comm
