// Chunked streaming pipeline for the push/pull wire paths.
//
// A StreamPipeline splits one logical P/Q transfer into row-aligned chunks
// and runs a bounded ring of them in flight through a CommBackend's
// split-phase chunk API (backend.hpp): while chunk i-1 crosses the wire and
// commits on the receiver, chunk i's EF encode is already underway.  In
// steady state each chunk therefore costs max(encode, wire, commit)
// instead of their sum — the Eq. 1 overlap term the cost model
// (core/cost_model.cpp) predicts and bench_table5_comm measures.
//
// The executor is core-aware.  With >= 2 hardware threads a dedicated
// encoder thread produces chunks ahead of the main thread's submit/commit
// loop, overlapping encode with wire and commit.  On a single-core host a
// second thread cannot overlap anything — it only adds context switches —
// so the same windowed ring runs inline: encode-and-submit until the
// window fills, then commit the oldest.  Both executors emit chunks in the
// same order, so the wire is bit-identical either way; what remains on a
// single core is the wire-level overlap (several frames in flight share
// the link instead of paying one round trip per chunk).
//
// Guarantees:
//  - depth 1 is the legacy path, bit-identical: one codec over the whole
//    array, one CommBackend::transfer() call, the same metrics.
//  - depth > 1 decodes to bit-identical floats: the quantized codecs scale
//    per k-block and chunks are block-aligned, so per-chunk codec state
//    partitions the monolithic codec's state exactly.
//  - error feedback survives retries: a chunk aborted by ChecksumError is
//    re-submitted from its pristine ring slot (codec state only commits at
//    decode), so the retry wire is byte-identical per chunk.
//  - chunks commit in submission order; the on_chunk hook fires as each
//    chunk's floats land, letting the worker overlap snapshot copies too.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "comm/backend.hpp"
#include "comm/codec.hpp"
#include "comm/strategy.hpp"
#include "obs/metrics.hpp"

namespace hcc::comm {

/// One direction's chunked transfer engine.  Owns the per-chunk codec
/// instances (so EF state persists across epochs) and the in-flight ring.
class StreamPipeline {
 public:
  enum class Direction {
    kPull,  ///< server -> worker (uses pull_codec_kind: no 2-bit pulls)
    kPush,  ///< worker -> server
  };

  /// How depth > 1 transfers drive the ring.  kAuto picks kThreaded when
  /// the host has >= 2 hardware threads and kInline otherwise; both emit
  /// bit-identical wire.  Process-wide test/bench seam.
  enum class Threading {
    kAuto,
    kInline,    ///< windowed ring on the calling thread only
    kThreaded,  ///< dedicated encoder thread feeds the ring
  };
  static void set_threading(Threading mode) noexcept;
  static Threading threading() noexcept;

  /// Wraps one delivery attempt with the caller's retry policy (fault
  /// counting, bounded retries, backoff).  The pipeline invokes the inner
  /// callable; it throws ChecksumError when the chunk needs re-sending and
  /// the same callable re-submits pristine bytes on its next invocation.
  using RetryFn = std::function<void(const std::function<void()>&)>;

  /// Fires after chunk [lo, hi) (float offsets into dst) has committed —
  /// in order — so per-chunk post-processing overlaps the remaining wire.
  using ChunkHook = std::function<void(std::size_t lo, std::size_t hi)>;

  /// `row_elems` is the factor rank k (chunks stay row-aligned and the
  /// quantized codecs scale per row); `sparse_indexed` frames quantized
  /// payloads with their row indices (SparseIndexedCodec) for the sparse
  /// push path — stateless codecs stay unwrapped, keeping the legacy
  /// fp32/fp16 sparse wire bit-identical.
  StreamPipeline(const CommConfig& config, std::size_t row_elems,
                 Direction direction, bool sparse_indexed = false);

  /// In-flight window; 1 = legacy single-shot transfers.
  std::uint32_t depth() const noexcept { return depth_; }
  /// Switches the window between epochs.  Crossing the 1 <-> N boundary
  /// re-partitions codec state, so the next transfer re-keyframes.
  void set_depth(std::uint32_t depth);
  /// Row-aligned floats per chunk (sized from codec_threads so a 0-thread
  /// per-chunk codec still saturates: threads x kParallelThreshold).
  std::size_t chunk_floats() const noexcept { return chunk_floats_; }
  /// Chunks an n-float transfer splits into at the current depth.
  std::size_t chunk_count(std::size_t n_floats) const noexcept;

  /// Drops all codec EF state; the next transfer per chunk is a keyframe.
  void reset_state();

  /// Row indices backing the sparse-indexed framing; must cover the rows of
  /// the next packed transfer, in payload order.  The span must stay valid
  /// through the transfer call.
  void set_sparse_rows(std::span<const std::uint32_t> rows) noexcept {
    sparse_rows_ = rows;
  }

  /// Wire codec label for logs/summaries ("int8", "sparse+int8", ...).
  std::string codec_name();

  /// Moves src into dst through `backend`.  With depth 1 this is exactly
  /// one backend.transfer(); with depth > 1 it streams chunks through the
  /// split-phase API, overlapping encode / wire / commit.
  void transfer(CommBackend& backend, std::span<const float> src,
                std::span<float> dst, const RetryFn& retry = {},
                const ChunkHook& on_chunk = {});

 private:
  void ensure_layout(std::size_t n_floats);
  std::unique_ptr<Codec> build_codec(std::uint32_t threads) const;
  void ensure_pipeline_metrics();
  std::pair<std::size_t, std::size_t> chunk_range(std::size_t chunk) const;
  void transfer_single(CommBackend& backend, std::span<const float> src,
                       std::span<float> dst, const RetryFn& retry,
                       const ChunkHook& on_chunk);
  void transfer_chunked(CommBackend& backend, std::span<const float> src,
                        std::span<float> dst, const RetryFn& retry,
                        const ChunkHook& on_chunk);
  void transfer_chunked_inline(CommBackend& backend,
                               std::span<const float> src,
                               std::span<float> dst, const RetryFn& retry,
                               const ChunkHook& on_chunk);

  CommConfig config_;
  std::size_t row_elems_;
  Direction dir_;
  bool sparse_indexed_;
  std::uint32_t depth_;
  std::size_t chunk_floats_;

  /// depth 1: exactly one codec over the whole array.  depth > 1: one per
  /// chunk, each created with 0 threads (the encoder thread and the chunk
  /// fan-out are the parallelism; nesting pools would explode threads).
  std::vector<std::unique_ptr<Codec>> codecs_;
  /// Aligned with codecs_: the SparseIndexedCodec view when wrapped.
  std::vector<SparseIndexedCodec*> sparse_views_;
  std::size_t n_floats_ = 0;

  std::span<const std::uint32_t> sparse_rows_;

  obs::Counter* chunks_counter_ = nullptr;
  obs::Gauge* inflight_gauge_ = nullptr;
  obs::Histogram* stall_hist_ = nullptr;
  obs::Gauge* overlap_gauge_ = nullptr;
};

}  // namespace hcc::comm
