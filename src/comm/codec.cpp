#include "comm/codec.hpp"

#include <cassert>
#include <cstring>

#include "obs/metrics.hpp"
#include "simd/dispatch.hpp"
#include "util/fp16.hpp"

namespace hcc::comm {

namespace {

/// Codec-level throughput counters (floats through the dispatched FP16
/// kernels); resolved once — registry lookups lock.
obs::Counter& encoded_counter() {
  static obs::Counter& c = obs::registry().counter("simd.fp16_encoded");
  return c;
}

obs::Counter& decoded_counter() {
  static obs::Counter& c = obs::registry().counter("simd.fp16_decoded");
  return c;
}

}  // namespace

void Fp32Codec::encode(std::span<const float> src,
                       std::span<std::byte> dst) const {
  assert(dst.size() >= encoded_bytes(src.size()));
  std::memcpy(dst.data(), src.data(), src.size() * sizeof(float));
}

void Fp32Codec::decode(std::span<const std::byte> src,
                       std::span<float> dst) const {
  assert(src.size() >= encoded_bytes(dst.size()));
  std::memcpy(dst.data(), src.data(), dst.size() * sizeof(float));
}

Fp16Codec::Fp16Codec(std::size_t threads)
    : pool_(threads >= 2 ? std::make_shared<util::ThreadPool>(threads)
                         : nullptr) {}

void Fp16Codec::encode(std::span<const float> src,
                       std::span<std::byte> dst) const {
  assert(dst.size() >= encoded_bytes(src.size()));
  auto* out = reinterpret_cast<util::Half*>(dst.data());
  const auto& kernels = simd::kernels();
  if (pool_ != nullptr && src.size() >= kParallelThreshold) {
    pool_->parallel_for(0, src.size(), [&](std::size_t lo, std::size_t hi) {
      kernels.fp16_encode(src.data() + lo, out + lo, hi - lo);
    });
  } else {
    kernels.fp16_encode(src.data(), out, src.size());
  }
  encoded_counter().add(src.size());
}

void Fp16Codec::decode(std::span<const std::byte> src,
                       std::span<float> dst) const {
  assert(src.size() >= encoded_bytes(dst.size()));
  const auto* in = reinterpret_cast<const util::Half*>(src.data());
  const auto& kernels = simd::kernels();
  if (pool_ != nullptr && dst.size() >= kParallelThreshold) {
    pool_->parallel_for(0, dst.size(), [&](std::size_t lo, std::size_t hi) {
      kernels.fp16_decode(in + lo, dst.data() + lo, hi - lo);
    });
  } else {
    kernels.fp16_decode(in, dst.data(), dst.size());
  }
  decoded_counter().add(dst.size());
}

}  // namespace hcc::comm
