#include "comm/codec.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "comm/backend.hpp"  // ChecksumError (sparse index-frame mismatch)
#include "obs/metrics.hpp"
#include "simd/dispatch.hpp"
#include "util/clock.hpp"
#include "util/fp16.hpp"

namespace hcc::comm {

namespace {

/// Codec-level throughput counters (floats through the dispatched FP16
/// kernels); resolved once — registry lookups lock.
obs::Counter& encoded_counter() {
  static obs::Counter& c = obs::registry().counter("simd.fp16_encoded");
  return c;
}

obs::Counter& decoded_counter() {
  static obs::Counter& c = obs::registry().counter("simd.fp16_decoded");
  return c;
}

/// The codec-family metrics every encode/decode feeds (wrapper layer, so
/// all codecs report uniformly): per-call milliseconds and the raw-vs-wire
/// byte totals whose ratio is the achieved compression.
obs::Histogram& encode_ms_hist() {
  static obs::Histogram& h = obs::registry().histogram("comm.codec.encode_ms");
  return h;
}

obs::Histogram& decode_ms_hist() {
  static obs::Histogram& h = obs::registry().histogram("comm.codec.decode_ms");
  return h;
}

obs::Counter& wire_bytes_counter() {
  static obs::Counter& c = obs::registry().counter("comm.codec.wire_bytes");
  return c;
}

obs::Counter& raw_bytes_counter() {
  static obs::Counter& c = obs::registry().counter("comm.codec.raw_bytes");
  return c;
}

}  // namespace

const char* codec_kind_name(CodecKind kind) noexcept {
  switch (kind) {
    case CodecKind::kAuto: return "auto";
    case CodecKind::kFp32: return "fp32";
    case CodecKind::kFp16: return "fp16";
    case CodecKind::kInt8: return "int8";
    case CodecKind::kTwoBit: return "2bit";
  }
  return "unknown";
}

bool parse_codec_kind(std::string_view name, CodecKind& out) noexcept {
  for (const CodecKind kind :
       {CodecKind::kAuto, CodecKind::kFp32, CodecKind::kFp16, CodecKind::kInt8,
        CodecKind::kTwoBit}) {
    if (name == codec_kind_name(kind)) {
      out = kind;
      return true;
    }
  }
  return false;
}

void Codec::encode(std::span<const float> src, std::span<std::byte> dst) {
  util::Stopwatch watch;
  encode_impl(src, dst);
  encode_ms_hist().observe(watch.seconds() * 1e3);
  wire_bytes_counter().add(encoded_bytes(src.size()));
  raw_bytes_counter().add(src.size() * sizeof(float));
}

void Codec::decode(std::span<const std::byte> src, std::span<float> dst) {
  util::Stopwatch watch;
  decode_impl(src, dst);
  decode_ms_hist().observe(watch.seconds() * 1e3);
}

void Fp32Codec::encode_impl(std::span<const float> src,
                            std::span<std::byte> dst) {
  assert(dst.size() >= encoded_bytes(src.size()));
  std::memcpy(dst.data(), src.data(), src.size() * sizeof(float));
}

void Fp32Codec::decode_impl(std::span<const std::byte> src,
                            std::span<float> dst) {
  assert(src.size() >= encoded_bytes(dst.size()));
  std::memcpy(dst.data(), src.data(), dst.size() * sizeof(float));
}

Fp16Codec::Fp16Codec(std::size_t threads)
    : pool_(threads >= 2 ? std::make_shared<util::ThreadPool>(threads)
                         : nullptr) {}

void Fp16Codec::encode_impl(std::span<const float> src,
                            std::span<std::byte> dst) {
  assert(dst.size() >= encoded_bytes(src.size()));
  auto* out = reinterpret_cast<util::Half*>(dst.data());
  const auto& kernels = simd::kernels();
  if (pool_ != nullptr && src.size() >= kParallelThreshold) {
    pool_->parallel_for(0, src.size(), [&](std::size_t lo, std::size_t hi) {
      kernels.fp16_encode(src.data() + lo, out + lo, hi - lo);
    });
  } else {
    kernels.fp16_encode(src.data(), out, src.size());
  }
  encoded_counter().add(src.size());
}

void Fp16Codec::decode_impl(std::span<const std::byte> src,
                            std::span<float> dst) {
  assert(src.size() >= encoded_bytes(dst.size()));
  const auto* in = reinterpret_cast<const util::Half*>(src.data());
  const auto& kernels = simd::kernels();
  if (pool_ != nullptr && dst.size() >= kParallelThreshold) {
    pool_->parallel_for(0, dst.size(), [&](std::size_t lo, std::size_t hi) {
      kernels.fp16_decode(in + lo, dst.data() + lo, hi - lo);
    });
  } else {
    kernels.fp16_decode(in, dst.data(), dst.size());
  }
  decoded_counter().add(dst.size());
}

QuantizedCodec::QuantizedCodec(std::size_t block_elems, std::size_t threads)
    : block_elems_(block_elems > 0 ? block_elems : 128),
      pool_(threads >= 2 ? std::make_shared<util::ThreadPool>(threads)
                         : nullptr) {}

std::size_t QuantizedCodec::encoded_bytes(std::size_t n_floats) const {
  if (keyframe(n_floats)) return n_floats * 4;
  const std::size_t full = n_floats / block_elems_;
  const std::size_t rem = n_floats % block_elems_;
  std::size_t bytes = full * (4 + block_payload_bytes(block_elems_));
  if (rem != 0) bytes += 4 + block_payload_bytes(rem);
  return bytes;
}

void QuantizedCodec::reset_state() {
  ref_.clear();
  residual_.clear();
  e_.clear();
}

void QuantizedCodec::for_each_block(
    std::size_t n_floats,
    const std::function<void(std::size_t, std::size_t)>& body) {
  const std::size_t blocks = block_count(n_floats);
  if (pool_ != nullptr && n_floats >= kParallelThreshold && blocks > 1) {
    pool_->parallel_for(0, blocks, body);
  } else {
    body(0, blocks);
  }
}

void QuantizedCodec::encode_impl(std::span<const float> src,
                                 std::span<std::byte> dst) {
  const std::size_t n = src.size();
  assert(dst.size() >= encoded_bytes(n));
  if (keyframe(n)) {
    // Lossless seed of the stream; state commits at the matching decode.
    std::memcpy(dst.data(), src.data(), n * sizeof(float));
    return;
  }
  // Everything below writes only the scratch delta — a transfer aborted
  // before decode leaves ref/residual untouched and the retry re-encodes
  // byte-identical wire.
  if (e_.size() != n) e_.resize(n);
  const auto& kernels = simd::kernels();
  for_each_block(n, [&](std::size_t lo_block, std::size_t hi_block) {
    const std::size_t lo = lo_block * block_elems_;
    const std::size_t hi = std::min(n, hi_block * block_elems_);
    kernels.ef_delta(src.data() + lo, ref_.data() + lo, residual_.data() + lo,
                     e_.data() + lo, hi - lo);
    for (std::size_t b = lo_block; b < hi_block; ++b) {
      const std::size_t off = b * block_elems_;
      const std::size_t elems = std::min(block_elems_, n - off);
      encode_block(e_.data() + off, elems, dst.data() + block_offset(b));
    }
  });
}

void QuantizedCodec::decode_impl(std::span<const std::byte> src,
                                 std::span<float> dst) {
  const std::size_t n = dst.size();
  assert(src.size() >= encoded_bytes(n));
  if (keyframe(n)) {
    std::memcpy(dst.data(), src.data(), n * sizeof(float));
    // Commit: the received keyframe becomes the shared reference, the
    // residual starts clean, and the scratch is pre-sized for steady state.
    ref_.assign(dst.begin(), dst.end());
    residual_.assign(n, 0.0f);
    e_.assign(n, 0.0f);
    return;
  }
  assert(e_.size() == n && "decode without a matching encode");
  for_each_block(n, [&](std::size_t lo_block, std::size_t hi_block) {
    for (std::size_t b = lo_block; b < hi_block; ++b) {
      const std::size_t off = b * block_elems_;
      const std::size_t elems = std::min(block_elems_, n - off);
      decode_block(src.data() + block_offset(b), elems, e_.data() + off,
                   ref_.data() + off, residual_.data() + off,
                   dst.data() + off);
    }
  });
}

void Int8Codec::encode_block(const float* e, std::size_t elems,
                             std::byte* out) {
  const auto& kernels = simd::kernels();
  const float s = kernels.absmax(e, elems);
  // The wire carries the dequantization step directly so both ends use the
  // exact same float; the encoder's inverse is computed from s once.
  const float step = s / 127.0f;
  const float inv = s > 0.0f ? 127.0f / s : 0.0f;
  std::memcpy(out, &step, 4);
  kernels.int8_encode(e, inv, reinterpret_cast<std::int8_t*>(out + 4), elems);
}

void Int8Codec::decode_block(const std::byte* in, std::size_t elems,
                             const float* e, float* ref, float* residual,
                             float* dst) {
  float step = 0.0f;
  std::memcpy(&step, in, 4);
  simd::kernels().int8_commit(reinterpret_cast<const std::int8_t*>(in + 4),
                              step, e, ref, residual, dst, elems);
}

void TwoBitCodec::encode_block(const float* e, std::size_t elems,
                               std::byte* out) {
  const auto& kernels = simd::kernels();
  // t = absmax/2 splits the block's range into thirds of influence: values
  // beyond +/-t move the reference by +/-t, the rest feed the residual.
  const float threshold = 0.5f * kernels.absmax(e, elems);
  std::memcpy(out, &threshold, 4);
  kernels.two_bit_encode(e, threshold,
                         reinterpret_cast<std::uint8_t*>(out + 4), elems);
}

SparseIndexedCodec::SparseIndexedCodec(std::unique_ptr<Codec> inner,
                                       std::size_t row_elems)
    : inner_(std::move(inner)), row_elems_(row_elems > 0 ? row_elems : 1) {
  assert(inner_ != nullptr);
}

std::size_t SparseIndexedCodec::encoded_bytes(std::size_t n_floats) const {
  assert(n_floats % row_elems_ == 0 && "packed payload must be whole rows");
  return header_bytes(n_floats / row_elems_) + inner_->encoded_bytes(n_floats);
}

void SparseIndexedCodec::encode_impl(std::span<const float> src,
                                     std::span<std::byte> dst) {
  const std::size_t rows = src.size() / row_elems_;
  assert(rows == rows_.size() && "set_rows() out of sync with the payload");
  assert(dst.size() >= encoded_bytes(src.size()));
  const std::uint32_t count = static_cast<std::uint32_t>(rows);
  std::memcpy(dst.data(), &count, 4);
  if (rows > 0) {
    std::memcpy(dst.data() + 4, rows_.data(), 4 * rows);
  }
  delegate_encode(*inner_, src, dst.subspan(header_bytes(rows)));
}

void SparseIndexedCodec::decode_impl(std::span<const std::byte> src,
                                     std::span<float> dst) {
  const std::size_t rows = dst.size() / row_elems_;
  assert(src.size() >= encoded_bytes(dst.size()));
  std::uint32_t count = 0;
  std::memcpy(&count, src.data(), 4);
  // A header that disagrees with the receiver's expected row set means the
  // packed slots would scatter to the wrong Q rows; discard before the
  // inner codec commits, like a payload checksum failure.
  if (count != rows ||
      (rows > 0 && std::memcmp(src.data() + 4, rows_.data(), 4 * rows) != 0)) {
    throw ChecksumError(name() + " row index frame");
  }
  delegate_decode(*inner_, src.subspan(header_bytes(rows)), dst);
}

void TwoBitCodec::decode_block(const std::byte* in, std::size_t elems,
                               const float* e, float* ref, float* residual,
                               float* dst) {
  float threshold = 0.0f;
  std::memcpy(&threshold, in, 4);
  simd::kernels().two_bit_commit(reinterpret_cast<const std::uint8_t*>(in + 4),
                                 threshold, e, ref, residual, dst, elems);
}

}  // namespace hcc::comm
