#include "comm/codec.hpp"

#include <cassert>
#include <cstring>

#include "util/fp16.hpp"

namespace hcc::comm {

void Fp32Codec::encode(std::span<const float> src,
                       std::span<std::byte> dst) const {
  assert(dst.size() >= encoded_bytes(src.size()));
  std::memcpy(dst.data(), src.data(), src.size() * sizeof(float));
}

void Fp32Codec::decode(std::span<const std::byte> src,
                       std::span<float> dst) const {
  assert(src.size() >= encoded_bytes(dst.size()));
  std::memcpy(dst.data(), src.data(), dst.size() * sizeof(float));
}

void Fp16Codec::encode(std::span<const float> src,
                       std::span<std::byte> dst) const {
  assert(dst.size() >= encoded_bytes(src.size()));
  auto* out = reinterpret_cast<util::Half*>(dst.data());
  util::fp16_encode(src, std::span<util::Half>(out, src.size()));
}

void Fp16Codec::decode(std::span<const std::byte> src,
                       std::span<float> dst) const {
  assert(src.size() >= encoded_bytes(dst.size()));
  const auto* in = reinterpret_cast<const util::Half*>(src.data());
  util::fp16_decode(std::span<const util::Half>(in, dst.size()), dst);
}

}  // namespace hcc::comm
