// Sequence-numbered reliable sessions over a Transport (the protocol tier
// of the elastic parameter server).
//
// A SessionComm is a CommBackend whose transfer() frames the encoded
// payload and moves it through a lossy link with TCP-shaped machinery,
// sized down to what a deterministic single-process harness needs:
//
//  - every data frame carries a session id, a sequence number and an
//    FNV-1a payload checksum (the PR-2 wire checksum, now a frame field);
//  - the receiver delivers in order exactly once: stale seqs are deduped,
//    early seqs parked in a reorder buffer, corrupt frames discarded
//    before decode (the sender retransmits);
//  - acks are cumulative; the ack round-trip feeds transport.rtt_ms;
//  - heartbeats probe the link whenever it goes silent mid-transfer, at
//    TransportConfig::heartbeat_ms of virtual time;
//  - no ack progress for the cost-model-derived timeout (max(4 x modeled
//    frame RTT, 3 x heartbeat)) triggers retransmission, then bounded
//    reconnection with exponential virtual backoff; a new session id is
//    minted and every unacked frame is replayed idempotently;
//  - a reconnect budget exhausted throws fault::LinkDeadError, which is a
//    WorkerFault — the trainer's existing dead-worker recovery (checkpoint
//    rollback + repartition) takes it from there.
//
// Because the session delivers the exact encoded bytes exactly once, in
// order, a chaos run that heals produces a bit-identical training
// trajectory to the in-process transport — the RMSE-parity property the
// replay tests pin down.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "comm/backend.hpp"
#include "comm/transport.hpp"
#include "obs/metrics.hpp"

namespace hcc::comm {

enum class FrameType : std::uint8_t {
  kData = 1,       ///< payload-bearing, sequence-numbered
  kAck = 2,        ///< cumulative ack (seq = highest in-order delivered)
  kHeartbeat = 3,  ///< silence probe; peer answers with an ack
};

/// Fixed 33-byte wire header preceding the payload.
struct FrameHeader {
  static constexpr std::uint32_t kMagic = 0x48434d46u;  // "HCMF"
  static constexpr std::size_t kBytes = 33;

  std::uint32_t magic = kMagic;
  FrameType type = FrameType::kData;
  std::uint32_t session = 0;
  std::uint64_t seq = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t checksum = 0;  ///< FNV-1a 64 over the payload

  void store(std::span<std::byte> dst) const;
  static FrameHeader load(std::span<const std::byte> src);
};

/// Protocol accounting (mirrored into the transport.* registry metrics).
struct TransportStats {
  std::uint64_t frames = 0;          ///< data frames sent, incl. replays
  std::uint64_t heartbeats = 0;      ///< silence probes sent
  std::uint64_t retransmits = 0;     ///< data frames re-sent (RTO or replay)
  std::uint64_t reconnects = 0;      ///< successful session re-establishments
  std::uint64_t dup_discards = 0;    ///< duplicate data frames deduped
  std::uint64_t checksum_drops = 0;  ///< corrupt frames discarded pre-decode
};

/// Reliable exactly-once CommBackend over a (possibly lossy) Transport.
class SessionComm final : public CommBackend {
 public:
  SessionComm(std::unique_ptr<Transport> transport,
              const TransportConfig& config, std::uint32_t worker);

  void transfer(std::span<const float> src, std::span<float> dst,
                Codec& codec) override;
  std::string name() const override { return "COMM-T"; }
  void begin_epoch(std::uint32_t epoch) override;

  /// Windowed chunk mode (comm/pipeline.hpp): each chunk is its own
  /// sequence-numbered data frame, so several are in flight per logical
  /// transfer.  The receiver still delivers in order exactly once — chaos
  /// drop/dup/reorder heal through the same retransmit/reorder machinery —
  /// and settle_chunks() pumps until every frame is acked, restoring the
  /// one-transfer-at-a-time invariant between transfers.
  void submit_chunk(std::span<const std::byte> wire) override;
  std::span<const std::byte> await_chunk() override;
  void settle_chunks() override;
  std::size_t chunks_in_flight() const noexcept override {
    return outstanding_chunks_;
  }

  const TransportStats& transport_stats() const noexcept { return tstats_; }
  Transport& link_transport() noexcept { return *transport_; }
  std::uint32_t session_id() const noexcept { return session_; }

 private:
  void ensure_transport_metrics();
  std::vector<std::byte> make_frame(FrameType type, std::uint64_t seq,
                                    std::span<const std::byte> payload) const;
  /// (Re)sends the pristine stored copy of `seq`, restamping the current
  /// session id.
  void transmit(std::uint64_t seq);
  void send_control(FrameType type, std::uint64_t seq);
  /// Sizes the RTT/RTO/timeout timers from the largest frame currently in
  /// flight (transfer() and submit_chunk() both route through this).
  void refresh_timers(std::size_t frame_bytes);
  void pump_until_acked();
  /// Core protocol loop shared by every blocking wait: drains, heartbeats,
  /// retransmits on RTO and reconnects on timeout until `done()` holds.
  void pump_until(const std::function<bool()>& done);
  /// Drains both directions; true when anything at all arrived (liveness).
  bool drain();
  bool receiver_handle(std::vector<std::byte>& frame);
  bool sender_handle(const std::vector<std::byte>& frame);
  void retransmit_unacked();
  void reconnect_with_backoff();
  std::uint64_t ms_to_ticks(double ms) const;

  std::unique_ptr<Transport> transport_;
  TransportConfig config_;
  std::uint32_t worker_;

  // Sender state.
  std::uint32_t session_ = 1;
  std::uint64_t next_seq_ = 1;
  std::map<std::uint64_t, std::vector<std::byte>> unacked_;  ///< pristine
  std::map<std::uint64_t, std::uint64_t> send_tick_;

  // Receiver state.  Deliveries queue in order; legacy transfer() pops
  // exactly one, windowed await_chunk() pops them as they land.
  std::uint64_t last_delivered_seq_ = 0;
  std::map<std::uint64_t, std::vector<std::byte>> reorder_buffer_;
  std::deque<std::vector<std::byte>> delivered_q_;
  std::vector<std::byte> awaited_;  ///< backs the span await_chunk() returns

  /// Chunks submitted but not yet awaited (windowed mode).
  std::size_t outstanding_chunks_ = 0;

  // Timers (ticks), refreshed per transfer from the frame size.
  std::uint64_t heartbeat_ticks_ = 1;
  std::uint64_t rto_ticks_ = 1;
  std::uint64_t timeout_ticks_ = 1;

  TransportStats tstats_;
  obs::Counter* frames_counter_ = nullptr;
  obs::Counter* heartbeats_counter_ = nullptr;
  obs::Counter* retransmits_counter_ = nullptr;
  obs::Counter* reconnects_counter_ = nullptr;
  obs::Counter* dup_discards_counter_ = nullptr;
  obs::Counter* checksum_drops_counter_ = nullptr;
  obs::Histogram* rtt_hist_ = nullptr;
};

}  // namespace hcc::comm
