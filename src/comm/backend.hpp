// Functional communication backends.
//
// These really move feature data between the server and workers (which live
// in one process here; the paper uses OS processes + shared pinned memory,
// an isomorphic structure — see DESIGN.md's substitution table).
//
// - ShmComm reproduces "COMM": a shared pull buffer (server -> all workers)
//   and per-worker push buffers, with exactly one wire copy per direction.
// - BrokerComm reproduces "COMM-P", the ps-lite-style baseline: payloads are
//   serialized into bounded messages, enqueued with a broker, delivered into
//   a receive buffer and deserialized — three extra copies and per-message
//   overhead, which is why Table 5 shows it ~7x slower at equal function.
//
// Both backends count bytes, copies and messages so tests can assert the
// structural difference and the simulator's efficiency constants stay
// justified by the functional layer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "comm/codec.hpp"
#include "obs/metrics.hpp"

namespace hcc::comm {

/// A transfer's payload checksum did not survive the wire (fault-tolerance
/// extension): the receiver must discard the buffer and re-request.
class ChecksumError : public std::runtime_error {
 public:
  explicit ChecksumError(const std::string& backend)
      : std::runtime_error("COMM checksum mismatch on " + backend +
                           " transfer (corrupt payload discarded)") {}
};

/// FNV-1a 64 over a byte span — the wire checksum.  Cheap, stateless, and
/// sensitive to any single flipped bit.
std::uint64_t wire_checksum(std::span<const std::byte> bytes) noexcept;

/// Test/fault seam: mutates wire bytes "in flight" (between the sender's
/// encode and the receiver's decode).
using WireTap = std::function<void(std::span<std::byte>)>;

/// Transfer accounting.
struct TransferStats {
  std::uint64_t wire_bytes = 0;  ///< bytes that crossed the (virtual) bus
  std::uint64_t copies = 0;      ///< buffer-to-buffer copy operations
  std::uint64_t messages = 0;    ///< discrete messages (BrokerComm only)

  TransferStats& operator+=(const TransferStats& o) {
    wire_bytes += o.wire_bytes;
    copies += o.copies;
    messages += o.messages;
    return *this;
  }
};

/// Moves float arrays between server and worker address spaces.
class CommBackend {
 public:
  virtual ~CommBackend() = default;

  /// Transfers src into dst (equal float counts) through the backend's
  /// buffers using `codec` on the wire.  Direction-agnostic: Pull passes
  /// (global, local), Push passes (local, staging).
  virtual void transfer(std::span<const float> src, std::span<float> dst,
                        Codec& codec) = 0;

  virtual std::string name() const = 0;

  /// Epoch cursor for transports whose fault schedule is epoch-addressed
  /// (SessionComm forwards it to a chaos link); a no-op for the in-process
  /// backends, so the legacy wire path is untouched.
  virtual void begin_epoch(std::uint32_t epoch) { (void)epoch; }

  // --- Split-phase chunk API (comm/pipeline.hpp) ------------------------
  //
  // A StreamPipeline moves one logical transfer as several pre-encoded
  // chunks so the sender's encode overlaps the wire and the receiver's
  // commit.  Contract: submit_chunk() enqueues wire bytes without blocking
  // on delivery; await_chunk() blocks until the *oldest* outstanding chunk
  // is delivered and returns a view of its bytes (valid until the next
  // submit/await/settle call), throwing ChecksumError when the payload was
  // corrupted in flight — the caller re-submits its pristine copy;
  // settle_chunks() runs after the last await and quiesces the transfer
  // (for sessions: pumps until every frame is acked).  The base
  // implementation queues in-process copies, so every backend supports the
  // pipeline; SessionComm overrides it with real windowed frames.

  /// Enqueues one chunk's wire bytes (may deliver instantly in-process).
  virtual void submit_chunk(std::span<const std::byte> wire);
  /// Delivers the oldest outstanding chunk, in submission order.
  virtual std::span<const std::byte> await_chunk();
  /// Post-transfer barrier: returns once nothing is outstanding.
  virtual void settle_chunks() {}
  /// Outstanding submitted-but-not-awaited chunks.
  virtual std::size_t chunks_in_flight() const noexcept {
    return pending_chunks_.size();
  }

  const TransferStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }

  /// Enables the out-of-band payload checksum (8 extra wire bytes per
  /// transfer; transfer() throws ChecksumError on mismatch).  Off by
  /// default so the wire format is unchanged unless fault tolerance asks.
  void set_checksum_enabled(bool enabled) noexcept { checksum_ = enabled; }
  bool checksum_enabled() const noexcept { return checksum_; }

  /// Installs (or clears, with nullptr) the in-flight wire tap.
  void set_wire_tap(WireTap tap) { tap_ = std::move(tap); }

 protected:
  /// Shared post-encode / pre-decode wire handling: applies the tap and,
  /// with checksums on, verifies the payload survived (accounting for the
  /// 8 checksum bytes).  Throws ChecksumError on mismatch.
  void cross_wire(std::span<std::byte> wire);
  /// Resolves this backend's per-strategy registry metrics on first use
  /// (`comm.<name>.wire_bytes`, `.transfers`, `.messages`, `.codec_s`).
  /// Lazy because name() is virtual and the registry lookup locks.
  void ensure_metrics();

  TransferStats stats_;
  bool checksum_ = false;
  WireTap tap_;
  /// Base chunk-API state: queued in-process chunk copies and the delivered
  /// buffer await_chunk() hands out.  After a ChecksumError the next
  /// submit_chunk() is the caller's pristine re-send and must jump ahead of
  /// any younger chunks already queued, preserving in-order delivery.
  std::deque<std::vector<std::byte>> pending_chunks_;
  std::vector<std::byte> awaited_chunk_;
  bool resubmit_front_ = false;
  obs::Counter* wire_bytes_counter_ = nullptr;
  obs::Counter* transfers_counter_ = nullptr;
  obs::Counter* messages_counter_ = nullptr;
  obs::Histogram* codec_hist_ = nullptr;
};

/// "COMM": shared-buffer transport, one wire copy.
class ShmComm final : public CommBackend {
 public:
  void transfer(std::span<const float> src, std::span<float> dst,
                Codec& codec) override;
  std::string name() const override { return "COMM"; }

 private:
  std::vector<std::byte> shared_buffer_;  // the mapped pull/push buffer
};

/// "COMM-P": message broker transport (ps-lite-like), three extra copies.
class BrokerComm final : public CommBackend {
 public:
  /// `message_bytes` bounds each message (ps-lite chunks large tensors).
  explicit BrokerComm(std::size_t message_bytes = 1 << 20)
      : message_bytes_(message_bytes) {}

  void transfer(std::span<const float> src, std::span<float> dst,
                Codec& codec) override;
  std::string name() const override { return "COMM-P"; }

 private:
  std::size_t message_bytes_;
  std::vector<std::byte> send_staging_;
  std::deque<std::vector<std::byte>> broker_queue_;
  std::vector<std::byte> recv_buffer_;
};

}  // namespace hcc::comm
