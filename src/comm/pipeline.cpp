#include "comm/pipeline.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>

#include "util/clock.hpp"

namespace hcc::comm {

namespace {

/// Applies the caller's retry policy, or runs the attempt once when the
/// caller passed none.
void run_with(const StreamPipeline::RetryFn& retry,
              const std::function<void()>& attempt) {
  if (retry) {
    retry(attempt);
  } else {
    attempt();
  }
}

std::atomic<StreamPipeline::Threading> g_threading{
    StreamPipeline::Threading::kAuto};

/// kAuto: an encoder thread only overlaps anything when a second hardware
/// thread exists to run it; on a single core it just adds context
/// switches on the critical path.  An unknown core count (0) assumes the
/// common multi-core case.
bool use_encoder_thread() {
  switch (g_threading.load(std::memory_order_relaxed)) {
    case StreamPipeline::Threading::kInline:
      return false;
    case StreamPipeline::Threading::kThreaded:
      return true;
    case StreamPipeline::Threading::kAuto:
      break;
  }
  return std::thread::hardware_concurrency() != 1;
}

}  // namespace

void StreamPipeline::set_threading(Threading mode) noexcept {
  g_threading.store(mode, std::memory_order_relaxed);
}

StreamPipeline::Threading StreamPipeline::threading() noexcept {
  return g_threading.load(std::memory_order_relaxed);
}

StreamPipeline::StreamPipeline(const CommConfig& config, std::size_t row_elems,
                               Direction direction, bool sparse_indexed)
    : config_(config),
      row_elems_(row_elems > 0 ? row_elems : 1),
      dir_(direction),
      sparse_indexed_(sparse_indexed),
      depth_(std::max(1u, config.pipeline_depth)) {
  // A chunk carries at least `codec_threads` pool-parallel stripes' worth of
  // floats so the 0-thread per-chunk codecs don't lose throughput to the
  // monolithic pooled codec, rounded down to whole rows so quantized scale
  // blocks (one per row) never straddle chunks.
  const std::size_t threads = std::max(1u, config_.codec_threads);
  const std::size_t target =
      std::max(row_elems_, threads * Fp16Codec::kParallelThreshold);
  chunk_floats_ = (target / row_elems_) * row_elems_;
}

std::size_t StreamPipeline::chunk_count(std::size_t n_floats) const noexcept {
  if (depth_ <= 1) return 1;
  return std::max<std::size_t>(
      1, (n_floats + chunk_floats_ - 1) / chunk_floats_);
}

void StreamPipeline::set_depth(std::uint32_t depth) {
  const std::uint32_t clamped = std::max(1u, depth);
  if (clamped == depth_) return;
  depth_ = clamped;
  // Codec state is partitioned per chunk; a different window can mean a
  // different partition, so drop the codecs and let the next transfer
  // re-seed with keyframes rather than decode against mismatched state.
  codecs_.clear();
  sparse_views_.clear();
  n_floats_ = 0;
}

void StreamPipeline::reset_state() {
  for (auto& codec : codecs_) codec->reset_state();
}

std::unique_ptr<Codec> StreamPipeline::build_codec(
    std::uint32_t threads) const {
  CommConfig config = config_;
  config.codec_threads = threads;
  auto inner = dir_ == Direction::kPull ? make_pull_codec(config, row_elems_)
                                        : make_codec(config, row_elems_);
  // Only stateful (quantized) payloads gain the row-index frame: their
  // sparse wire wasn't self-describing before, while fp32/fp16 sparse
  // transfers stay bit-identical to the legacy format.
  if (sparse_indexed_ && inner->stateful()) {
    return std::make_unique<SparseIndexedCodec>(std::move(inner), row_elems_);
  }
  return inner;
}

std::string StreamPipeline::codec_name() {
  if (!codecs_.empty()) return codecs_.front()->name();
  return build_codec(0)->name();
}

void StreamPipeline::ensure_pipeline_metrics() {
  if (chunks_counter_ != nullptr) return;
  auto& reg = obs::registry();
  chunks_counter_ = &reg.counter("comm.pipeline.chunks");
  inflight_gauge_ = &reg.gauge("comm.pipeline.inflight_peak");
  stall_hist_ = &reg.histogram("comm.pipeline.stall_ms");
  overlap_gauge_ = &reg.gauge("comm.pipeline.overlap_ratio");
}

std::pair<std::size_t, std::size_t> StreamPipeline::chunk_range(
    std::size_t chunk) const {
  const std::size_t lo = chunk * chunk_floats_;
  return {std::min(n_floats_, lo),
          std::min(n_floats_, lo + chunk_floats_)};
}

void StreamPipeline::ensure_layout(std::size_t n_floats) {
  if (depth_ <= 1) {
    // Legacy shape: one codec for every size (QuantizedCodec re-keyframes
    // internally when the float count changes, exactly as before this
    // pipeline existed).
    if (codecs_.empty()) {
      codecs_.push_back(build_codec(config_.codec_threads));
      sparse_views_.push_back(
          dynamic_cast<SparseIndexedCodec*>(codecs_.front().get()));
    }
    n_floats_ = n_floats;
    return;
  }
  const std::size_t chunks = chunk_count(n_floats);
  if (codecs_.size() != chunks) {
    // Chunk-count changes re-partition state; size drift inside the last
    // chunk is handled by that chunk's codec keyframing itself.
    codecs_.clear();
    sparse_views_.clear();
    codecs_.reserve(chunks);
    sparse_views_.reserve(chunks);
    for (std::size_t c = 0; c < chunks; ++c) {
      codecs_.push_back(build_codec(0));
      sparse_views_.push_back(
          dynamic_cast<SparseIndexedCodec*>(codecs_.back().get()));
    }
  }
  n_floats_ = n_floats;
}

void StreamPipeline::transfer(CommBackend& backend, std::span<const float> src,
                              std::span<float> dst, const RetryFn& retry,
                              const ChunkHook& on_chunk) {
  assert(src.size() == dst.size());
  ensure_layout(src.size());
  if (depth_ <= 1) {
    transfer_single(backend, src, dst, retry, on_chunk);
  } else {
    transfer_chunked(backend, src, dst, retry, on_chunk);
  }
}

void StreamPipeline::transfer_single(CommBackend& backend,
                                     std::span<const float> src,
                                     std::span<float> dst,
                                     const RetryFn& retry,
                                     const ChunkHook& on_chunk) {
  if (sparse_views_.front() != nullptr) {
    sparse_views_.front()->set_rows(sparse_rows_);
  }
  Codec& codec = *codecs_.front();
  run_with(retry, [&] { backend.transfer(src, dst, codec); });
  if (on_chunk) on_chunk(0, dst.size());
}

void StreamPipeline::transfer_chunked(CommBackend& backend,
                                      std::span<const float> src,
                                      std::span<float> dst,
                                      const RetryFn& retry,
                                      const ChunkHook& on_chunk) {
  ensure_pipeline_metrics();
  const std::size_t chunks = codecs_.size();
  const std::size_t window = std::min<std::size_t>(depth_, chunks);

  if (sparse_indexed_) {
    for (std::size_t c = 0; c < chunks; ++c) {
      if (sparse_views_[c] == nullptr) continue;
      const auto [lo, hi] = chunk_range(c);
      sparse_views_[c]->set_rows(
          sparse_rows_.subspan(lo / row_elems_, (hi - lo) / row_elems_));
    }
  }

  if (!use_encoder_thread()) {
    transfer_chunked_inline(backend, src, dst, retry, on_chunk);
    return;
  }

  // The in-flight ring.  Slot ownership alternates encoder -> main: the
  // encoder fills a slot when `encoded` is false, the main thread submits
  // and (much later) commits it, releasing the slot only after a
  // successful decode so the pristine bytes survive for ChecksumError
  // re-submission.  The acquire/release flag is the only synchronization
  // the wire buffers need; the mutex + condvar exist purely so a thread
  // with nothing to do can sleep instead of spinning.  The main thread
  // checks flags non-blockingly while it has chunks in flight, so in
  // steady state (encode faster than commit) neither thread's condvar
  // wake latency sits on the critical path.
  struct Slot {
    std::vector<std::byte> wire;
    std::atomic<bool> encoded{false};
  };
  std::vector<Slot> ring(window);

  std::mutex mu;
  std::condition_variable cv;
  bool abort = false;
  std::exception_ptr encode_error;
  double encode_s = 0.0;  // encoder-thread-owned until the join

  util::Stopwatch wall;
  std::thread encoder([&] {
    try {
      util::Stopwatch watch;
      for (std::size_t c = 0; c < chunks; ++c) {
        Slot& slot = ring[c % window];
        {
          std::unique_lock<std::mutex> lock(mu);
          cv.wait(lock, [&] {
            return abort || !slot.encoded.load(std::memory_order_acquire);
          });
          if (abort) return;
        }
        const auto [lo, hi] = chunk_range(c);
        Codec& codec = *codecs_[c];
        slot.wire.resize(codec.encoded_bytes(hi - lo));
        watch.reset();
        codec.encode(src.subspan(lo, hi - lo), slot.wire);
        encode_s += watch.seconds();
        slot.encoded.store(true, std::memory_order_release);
        { std::lock_guard<std::mutex> lock(mu); }  // pairs with cv.wait
        cv.notify_all();
      }
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(mu);
        encode_error = std::current_exception();
        abort = true;
      }
      cv.notify_all();
    }
  });

  double stall_s = 0.0;
  double commit_s = 0.0;
  std::size_t inflight_peak = 0;
  std::size_t submitted = 0;
  std::size_t committed = 0;
  util::Stopwatch watch;
  try {
    while (committed < chunks) {
      // Fill the window opportunistically: submit every chunk the encoder
      // already finished, without blocking — the wire keeps streaming as
      // long as something is in flight, and commit work below hides the
      // encoder's latency for the rest.
      while (submitted < chunks && submitted - committed < window &&
             ring[submitted % window].encoded.load(
                 std::memory_order_acquire)) {
        backend.submit_chunk(ring[submitted % window].wire);
        ++submitted;
        inflight_peak = std::max(inflight_peak, backend.chunks_in_flight());
      }
      // Pipe ran dry (nothing in flight to commit): block for the next
      // encoded chunk.  This is the only place the main thread sleeps on
      // the encoder, so only a truly encode-bound transfer stalls here.
      if (submitted == committed) {
        Slot& slot = ring[submitted % window];
        bool aborted = false;
        watch.reset();
        {
          std::unique_lock<std::mutex> lock(mu);
          cv.wait(lock, [&] {
            return abort || slot.encoded.load(std::memory_order_acquire);
          });
          aborted = abort;
        }
        stall_s += watch.seconds();
        if (aborted) break;
        backend.submit_chunk(slot.wire);
        ++submitted;
        inflight_peak = std::max(inflight_peak, backend.chunks_in_flight());
      }

      // Commit the oldest outstanding chunk.  On ChecksumError the same
      // attempt re-submits the slot's pristine bytes first, so the retry
      // wire is byte-identical and EF state (committed only by decode)
      // stays consistent.
      const std::size_t c = committed;
      Slot& slot = ring[c % window];
      const auto [lo, hi] = chunk_range(c);
      bool resend = false;
      run_with(retry, [&] {
        if (resend) backend.submit_chunk(slot.wire);
        resend = true;
        watch.reset();
        const std::span<const std::byte> delivered = backend.await_chunk();
        stall_s += watch.seconds();
        watch.reset();
        codecs_[c]->decode(delivered, dst.subspan(lo, hi - lo));
        commit_s += watch.seconds();
      });
      if (on_chunk) on_chunk(lo, hi);
      ++committed;
      slot.encoded.store(false, std::memory_order_release);  // slot freed
      { std::lock_guard<std::mutex> lock(mu); }  // pairs with cv.wait
      cv.notify_all();
    }
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(mu);
      abort = true;
    }
    cv.notify_all();
    encoder.join();
    throw;
  }
  encoder.join();
  if (encode_error) std::rethrow_exception(encode_error);
  backend.settle_chunks();

  // Overlap accounting: the main thread's wall clock already contains the
  // decode/commit work and every stall; the encoder's busy time rides on
  // top.  Serial execution gives a ratio near 1, full encode/commit
  // overlap pushes it toward 2.
  const double wall_s = wall.seconds();
  chunks_counter_->add(chunks);
  inflight_gauge_->set(static_cast<double>(inflight_peak));
  stall_hist_->observe(stall_s * 1e3);
  if (wall_s > 0.0) {
    overlap_gauge_->set((encode_s + commit_s + stall_s) / wall_s);
  }
}

void StreamPipeline::transfer_chunked_inline(CommBackend& backend,
                                             std::span<const float> src,
                                             std::span<float> dst,
                                             const RetryFn& retry,
                                             const ChunkHook& on_chunk) {
  const std::size_t chunks = codecs_.size();
  const std::size_t window = std::min<std::size_t>(depth_, chunks);
  // Same ring, same submit/commit order as the threaded executor — the
  // wire is bit-identical — minus the encoder thread: encode-and-submit
  // until the window fills, then commit the oldest.  A slot's pristine
  // bytes survive until its commit for ChecksumError re-submission.
  std::vector<std::vector<std::byte>> ring(window);

  double encode_s = 0.0;
  double stall_s = 0.0;
  double commit_s = 0.0;
  std::size_t inflight_peak = 0;
  std::size_t submitted = 0;
  std::size_t committed = 0;
  util::Stopwatch wall;
  util::Stopwatch watch;
  while (committed < chunks) {
    while (submitted < chunks && submitted - committed < window) {
      std::vector<std::byte>& wire = ring[submitted % window];
      const auto [lo, hi] = chunk_range(submitted);
      wire.resize(codecs_[submitted]->encoded_bytes(hi - lo));
      watch.reset();
      codecs_[submitted]->encode(src.subspan(lo, hi - lo), wire);
      encode_s += watch.seconds();
      backend.submit_chunk(wire);
      ++submitted;
      inflight_peak = std::max(inflight_peak, backend.chunks_in_flight());
    }

    const std::size_t c = committed;
    std::vector<std::byte>& wire = ring[c % window];
    const auto [lo, hi] = chunk_range(c);
    bool resend = false;
    run_with(retry, [&] {
      if (resend) backend.submit_chunk(wire);
      resend = true;
      watch.reset();
      const std::span<const std::byte> delivered = backend.await_chunk();
      stall_s += watch.seconds();
      watch.reset();
      codecs_[c]->decode(delivered, dst.subspan(lo, hi - lo));
      commit_s += watch.seconds();
    });
    if (on_chunk) on_chunk(lo, hi);
    ++committed;
  }
  backend.settle_chunks();

  const double wall_s = wall.seconds();
  chunks_counter_->add(chunks);
  inflight_gauge_->set(static_cast<double>(inflight_peak));
  stall_hist_->observe(stall_s * 1e3);
  if (wall_s > 0.0) {
    overlap_gauge_->set((encode_s + commit_s + stall_s) / wall_s);
  }
}

}  // namespace hcc::comm
