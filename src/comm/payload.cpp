#include "comm/payload.hpp"

#include <cmath>

namespace hcc::comm {

double wire_bytes(std::uint64_t elements, CodecKind kind,
                  std::uint32_t row_elems) {
  const std::uint64_t row = row_elems > 0 ? row_elems : 128;
  const std::uint64_t blocks = (elements + row - 1) / row;
  const std::uint64_t rem = elements % row;
  switch (kind) {
    case CodecKind::kAuto:
    case CodecKind::kFp32:
      return static_cast<double>(elements) * 4.0;
    case CodecKind::kFp16:
      return static_cast<double>(elements) * 2.0;
    case CodecKind::kInt8:
      return static_cast<double>(blocks * 4 + elements);
    case CodecKind::kTwoBit: {
      const std::uint64_t full = elements / row;
      std::uint64_t payload = full * ((row + 3) / 4);
      if (rem != 0) payload += (rem + 3) / 4;
      return static_cast<double>(blocks * 4 + payload);
    }
  }
  return static_cast<double>(elements) * 4.0;
}

const char* payload_mode_name(PayloadMode mode) {
  switch (mode) {
    case PayloadMode::kPQ: return "P&Q";
    case PayloadMode::kQOnly: return "Q";
    case PayloadMode::kPOnly: return "P";
  }
  return "?";
}

std::uint64_t pull_elements(const sim::DatasetShape& shape, PayloadMode mode) {
  const std::uint64_t p_elems = shape.m * shape.k;
  const std::uint64_t q_elems = shape.n * shape.k;
  switch (mode) {
    case PayloadMode::kPQ: return p_elems + q_elems;
    case PayloadMode::kQOnly: return q_elems;
    case PayloadMode::kPOnly: return p_elems;
  }
  return 0;
}

std::uint64_t push_elements(const sim::DatasetShape& shape, PayloadMode mode,
                            bool last_epoch) {
  const std::uint64_t p_elems = shape.m * shape.k;
  const std::uint64_t q_elems = shape.n * shape.k;
  if (mode == PayloadMode::kPQ || last_epoch) return p_elems + q_elems;
  return mode == PayloadMode::kQOnly ? q_elems : p_elems;
}

double expected_touched_fraction(double assigned_nnz, double n) {
  if (n <= 0.0) return 0.0;
  if (assigned_nnz <= 0.0) return 0.0;
  return 1.0 - std::exp(-assigned_nnz / n);
}

double total_wire_bytes(const sim::DatasetShape& shape, PayloadMode mode,
                        bool fp16, std::uint32_t epochs) {
  double total = 0.0;
  for (std::uint32_t e = 0; e < epochs; ++e) {
    const bool last = (e + 1 == epochs);
    total += wire_bytes(pull_elements(shape, mode), fp16);
    total += wire_bytes(push_elements(shape, mode, last), fp16);
  }
  return total;
}

}  // namespace hcc::comm
