// Payload selection and byte accounting (Strategy 1 of Section 3.4).
//
// Under a row grid, each worker's P rows are private for the whole training
// run, so the per-epoch exchange only needs the Q matrix ("Transmitting Q
// matrix only"); symmetrically, a column grid only needs P.  The very last
// push of training transmits both matrices so the server ends up with the
// complete model.
#pragma once

#include <cstdint>

#include "comm/codec.hpp"
#include "sim/perf_model.hpp"

namespace hcc::comm {

/// Which feature matrices travel between worker and server each epoch.
enum class PayloadMode {
  kPQ,     ///< both matrices, every epoch (unoptimized baseline)
  kQOnly,  ///< Q each epoch, P only in the final push (row grids, m >= n)
  kPOnly,  ///< P each epoch, Q only in the final push (column grids, m < n)
};

const char* payload_mode_name(PayloadMode mode);

/// The paper's rule: transmit only the smaller-dimension matrix.
inline PayloadMode choose_payload(std::uint64_t m, std::uint64_t n) {
  return m >= n ? PayloadMode::kQOnly : PayloadMode::kPOnly;
}

/// Feature elements (floats) a worker pulls at the start of an epoch.
std::uint64_t pull_elements(const sim::DatasetShape& shape, PayloadMode mode);

/// Feature elements a worker pushes at the end of an epoch.  `last_epoch`
/// adds the withheld matrix on the final push.
std::uint64_t push_elements(const sim::DatasetShape& shape, PayloadMode mode,
                            bool last_epoch);

/// Wire bytes for `elements` floats under the active codec.
inline double wire_bytes(std::uint64_t elements, bool fp16) {
  return static_cast<double>(elements) * (fp16 ? 2.0 : 4.0);
}

/// Codec-kind-aware overload for the Eq. 1-5 cost terms.  The quantized
/// codecs add a 4-byte scale per `row_elems` block; their occasional
/// keyframes are ignored (steady-state bytes dominate a multi-epoch run).
/// kAuto is resolved by the caller (see comm::effective_codec).
double wire_bytes(std::uint64_t elements, CodecKind kind,
                  std::uint32_t row_elems);

/// Total wire bytes one worker moves (pull + push) across a whole training
/// run of `epochs` epochs.  This is the quantity whose ratio gives the
/// paper's theoretical speedups in Table 5 (e.g. ~19x for Netflix Q-only).
double total_wire_bytes(const sim::DatasetShape& shape, PayloadMode mode,
                        bool fp16, std::uint32_t epochs);

/// Expected fraction of the n items a worker's slice touches, given it
/// holds `assigned_nnz` ratings spread over `n` items — the balls-in-bins
/// estimate 1 - exp(-assigned/n) under uniform popularity.  Real Zipf data
/// touches fewer items; the functional layer uses exact per-slice counts,
/// the timing layer this bound (so sparse-push savings are conservative).
/// Drives "Strategy 4" (sparse push, an extension — see CommConfig::sparse).
double expected_touched_fraction(double assigned_nnz, double n);

}  // namespace hcc::comm
