// Pluggable inter-node links under the COMM backends (the transport tier
// of the elastic parameter server).
//
// The paper's framework is a single box; scaling it out (ROADMAP item 4)
// means the pull/push wire may now be a real network link that drops,
// duplicates, reorders, delays and severs.  This header models that link as
// a Transport: a raw frame mover between the two ends of one worker <->
// server channel, running on a *virtual tick clock* so every schedule is
// deterministic and tests never sleep.
//
// Three implementations:
//  - InProcessTransport: frames arrive the tick they are sent — the
//    degenerate link the single-box build always had.  (The default
//    TransportKind::kInProcess configuration does not even construct a
//    transport: make_backend routes to the legacy ShmComm/BrokerComm path,
//    keeping the wire traffic bit-identical to previous releases.)
//  - SimLatencyTransport: arrival times follow a sim::LinkSpec calibrated
//    like Table 2 calibrated the intra-box buses (peak bandwidth, per-
//    message latency, sustained efficiency), so a "100GbE" run observes
//    100GbE round-trip times in its transport.rtt_ms histogram.
//  - ChaosTransport: a SimLatencyTransport whose forward direction obeys
//    the transport events of a seeded fault::FaultPlan (drop / dup /
//    reorder / delay / disconnect), deterministic first-N-frames-of-epoch
//    semantics, each event's budget burned once across the run.
//
// The reliability protocol on top (sequence numbers, acks, heartbeats,
// retransmission, reconnection) lives in comm/session.hpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "fault/plan.hpp"
#include "obs/metrics.hpp"
#include "sim/platform.hpp"

namespace hcc::comm {

enum class TransportKind : std::uint8_t { kInProcess, kSimLatency, kChaos };

const char* transport_kind_name(TransportKind kind);

/// Parses "in-process", "sim-latency" or "chaos" (the --transport CLI
/// values); throws std::invalid_argument otherwise.
TransportKind transport_kind_by_name(const std::string& name);

/// Everything configurable about the worker<->server links.
struct TransportConfig {
  TransportKind kind = TransportKind::kInProcess;

  /// sim::link_by_name preset the latency model reads ("local", "100GbE",
  /// "10GbE", "IB-HDR").  Ignored by kInProcess.
  std::string link = "100GbE";

  /// Per-link heartbeat interval (virtual milliseconds): the longest the
  /// session stays silent while it is waiting on the peer.
  double heartbeat_ms = 5.0;

  /// Dead-link timeout (virtual milliseconds).  0 derives it from the cost
  /// model — max(4 x modeled frame RTT, 3 x heartbeat) — the same way the
  /// straggler deadline derives from the Eq. 1-5 phase predictions.
  double timeout_ms = 0.0;

  /// Bounded reconnection: attempts (with exponential virtual backoff)
  /// before the link is declared dead and fault::LinkDeadError hands the
  /// worker to the dead-worker recovery path.
  std::uint32_t reconnect_budget = 5;

  /// Backoff base (virtual milliseconds): attempt a waits base * 2^a.
  double backoff_base_ms = 1.0;

  /// Chaos schedule (kChaos only): the transport events of this plan drive
  /// the lossy link.  Kept in sync with FaultOptions::plan by the trainers.
  fault::FaultPlan plan;
};

/// One direction of the full-duplex link (data flows forward, acks flow
/// reverse — "forward" is whichever end transfer() is pushing from).
enum class Dir : std::uint8_t { kForward, kReverse };

/// Raw frame mover between the two ends of one worker<->server link.
///
/// Time is a virtual tick counter advanced by the session pump; a tick
/// models `tick_seconds()` of wall time.  Nothing here sleeps.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Enqueues a frame for delivery (a lossy link may drop, duplicate,
  /// reorder or delay it — or swallow it whole while disconnected).
  virtual void send(Dir dir, std::vector<std::byte> frame) = 0;

  /// Pops the next frame whose virtual arrival time has passed.
  virtual bool recv(Dir dir, std::vector<std::byte>& frame) = 0;

  /// Advances the virtual clock.
  void advance(std::uint64_t ticks = 1) noexcept { now_ += ticks; }
  std::uint64_t now() const noexcept { return now_; }

  /// Seconds one tick models (drives the transport.rtt_ms histogram and
  /// the ms -> tick conversions of heartbeat/timeout/backoff).
  virtual double tick_seconds() const noexcept { return 1e-6; }

  /// Ticks a `bytes`-sized frame needs one way (latency + serialization).
  virtual std::uint64_t one_way_ticks(std::size_t bytes) const {
    (void)bytes;
    return 0;
  }

  virtual bool connected() const noexcept { return true; }

  /// One reconnection attempt; true on success.  In-flight frames of a
  /// severed link are gone — the session replays unacked ones.
  virtual bool try_reconnect() { return true; }

  /// Chaos schedule cursor (no-op elsewhere): the trainers forward the
  /// fault injector's epoch so first-N-frames-of-epoch events line up.
  virtual void begin_epoch(std::uint32_t epoch) { (void)epoch; }

  virtual std::string name() const = 0;

 protected:
  std::uint64_t now_ = 0;
};

/// Zero-latency FIFO link: today's single-box behavior as a Transport.
class InProcessTransport final : public Transport {
 public:
  void send(Dir dir, std::vector<std::byte> frame) override;
  bool recv(Dir dir, std::vector<std::byte>& frame) override;
  std::string name() const override { return "in-process"; }

 private:
  std::deque<std::vector<std::byte>> queues_[2];
};

/// Calibrated-latency link: FIFO per direction, each frame's arrival tick
/// computed from the sim::LinkSpec (one-way latency plus serialization at
/// the sustained bandwidth).  Delivery is head-of-line: a held-up front
/// frame delays those behind it, like a real stream.
class SimLatencyTransport : public Transport {
 public:
  explicit SimLatencyTransport(sim::LinkSpec link);

  void send(Dir dir, std::vector<std::byte> frame) override;
  bool recv(Dir dir, std::vector<std::byte>& frame) override;
  double tick_seconds() const noexcept override { return tick_s_; }
  std::uint64_t one_way_ticks(std::size_t bytes) const override;
  std::string name() const override { return link_.name; }

  const sim::LinkSpec& link() const noexcept { return link_; }

 protected:
  struct Timed {
    std::uint64_t arrival = 0;
    std::vector<std::byte> frame;
  };

  /// Enqueues with an explicit arrival tick (the chaos subclass uses this
  /// to delay frames past their natural arrival).
  void enqueue(Dir dir, std::vector<std::byte> frame, std::uint64_t arrival);
  void clear_in_flight();

  sim::LinkSpec link_;
  double tick_s_;
  std::deque<Timed> queues_[2];
};

/// Lossy link: a SimLatencyTransport whose forward direction executes the
/// transport events of a seeded FaultPlan.  Each frame is matched against
/// the plan's (worker, epoch) events in plan order; the first event with
/// budget left fires and burns one count.  Budgets burn once per run, so a
/// post-rollback replay of an epoch does not re-fire its faults (recovery
/// converges instead of looping).
class ChaosTransport final : public SimLatencyTransport {
 public:
  ChaosTransport(sim::LinkSpec link, const fault::FaultPlan& plan,
                 std::uint32_t worker);

  void send(Dir dir, std::vector<std::byte> frame) override;
  bool recv(Dir dir, std::vector<std::byte>& frame) override;
  bool connected() const noexcept override { return connected_; }
  bool try_reconnect() override;
  void begin_epoch(std::uint32_t epoch) override;
  std::string name() const override {
    return "chaos(" + link_.name + ")";
  }

  /// Frames the link swallowed (drop events + frames sent while severed).
  std::uint64_t dropped() const noexcept { return dropped_; }

 private:
  struct Scheduled {
    fault::FaultEvent event;
    std::uint32_t remaining;  ///< budget left (count, burned once per run)
    bool triggered = false;   ///< disconnect: sever latched
  };

  void ensure_metrics();
  /// First matching event with budget, in plan order; nullptr when clean.
  Scheduled* match(fault::FaultKind kind);
  void sever();

  std::uint32_t worker_;
  std::uint32_t epoch_ = 0;
  bool connected_ = true;
  std::vector<Scheduled> schedule_;
  std::vector<std::byte> held_;  ///< reorder: frame awaiting a follower
  bool holding_ = false;
  std::uint64_t dropped_ = 0;
  obs::Counter* drops_counter_ = nullptr;
};

/// Builds the configured transport for one worker link (kInProcess gives
/// an InProcessTransport; callers normally avoid even that by routing
/// kInProcess through the legacy backends — see make_backend).
std::unique_ptr<Transport> make_transport(const TransportConfig& config,
                                          std::uint32_t worker);

}  // namespace hcc::comm
