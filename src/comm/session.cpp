#include "comm/session.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "fault/errors.hpp"
#include "obs/span.hpp"
#include "util/clock.hpp"

namespace hcc::comm {

namespace {

/// Backstop against a protocol bug ever spinning the virtual clock forever;
/// real schedules finish in well under a million ticks.
constexpr std::uint64_t kPumpGuard = 5'000'000;

constexpr std::size_t kSessionOffset = 5;  // magic(4) + type(1)

}  // namespace

void FrameHeader::store(std::span<std::byte> dst) const {
  assert(dst.size() >= kBytes);
  std::size_t at = 0;
  auto put = [&](const void* src, std::size_t n) {
    std::memcpy(dst.data() + at, src, n);
    at += n;
  };
  put(&magic, sizeof magic);
  const std::uint8_t t = static_cast<std::uint8_t>(type);
  put(&t, sizeof t);
  put(&session, sizeof session);
  put(&seq, sizeof seq);
  put(&payload_bytes, sizeof payload_bytes);
  put(&checksum, sizeof checksum);
}

FrameHeader FrameHeader::load(std::span<const std::byte> src) {
  assert(src.size() >= kBytes);
  FrameHeader h;
  std::size_t at = 0;
  auto get = [&](void* dst, std::size_t n) {
    std::memcpy(dst, src.data() + at, n);
    at += n;
  };
  get(&h.magic, sizeof h.magic);
  std::uint8_t t = 0;
  get(&t, sizeof t);
  h.type = static_cast<FrameType>(t);
  get(&h.session, sizeof h.session);
  get(&h.seq, sizeof h.seq);
  get(&h.payload_bytes, sizeof h.payload_bytes);
  get(&h.checksum, sizeof h.checksum);
  return h;
}

SessionComm::SessionComm(std::unique_ptr<Transport> transport,
                         const TransportConfig& config, std::uint32_t worker)
    : transport_(std::move(transport)), config_(config), worker_(worker) {}

void SessionComm::ensure_transport_metrics() {
  if (frames_counter_ != nullptr) return;
  auto& reg = obs::registry();
  frames_counter_ = &reg.counter("transport.frames");
  heartbeats_counter_ = &reg.counter("transport.heartbeats");
  retransmits_counter_ = &reg.counter("transport.retransmits");
  reconnects_counter_ = &reg.counter("transport.reconnects");
  dup_discards_counter_ = &reg.counter("transport.dup_discards");
  checksum_drops_counter_ = &reg.counter("transport.checksum_drops");
  rtt_hist_ = &reg.histogram("transport.rtt_ms");
}

void SessionComm::begin_epoch(std::uint32_t epoch) {
  transport_->begin_epoch(epoch);
}

std::uint64_t SessionComm::ms_to_ticks(double ms) const {
  const double ticks = ms * 1e-3 / transport_->tick_seconds();
  return std::max<std::uint64_t>(1,
                                 static_cast<std::uint64_t>(std::ceil(ticks)));
}

std::vector<std::byte> SessionComm::make_frame(
    FrameType type, std::uint64_t seq,
    std::span<const std::byte> payload) const {
  std::vector<std::byte> frame(FrameHeader::kBytes + payload.size());
  FrameHeader header;
  header.type = type;
  header.session = session_;
  header.seq = seq;
  header.payload_bytes = payload.size();
  header.checksum = wire_checksum(payload);
  header.store(frame);
  if (!payload.empty()) {
    std::memcpy(frame.data() + FrameHeader::kBytes, payload.data(),
                payload.size());
  }
  return frame;
}

void SessionComm::transmit(std::uint64_t seq) {
  auto it = unacked_.find(seq);
  assert(it != unacked_.end());
  std::vector<std::byte> copy = it->second;
  // Restamp the live session id (reconnections mint a new one; the stored
  // pristine frame keeps the payload and checksum untouched).
  std::memcpy(copy.data() + kSessionOffset, &session_, sizeof session_);
  send_tick_[seq] = transport_->now();
  transport_->send(Dir::kForward, std::move(copy));
  ++tstats_.frames;
  frames_counter_->add(1);
}

void SessionComm::send_control(FrameType type, std::uint64_t seq) {
  FrameHeader header;
  header.type = type;
  header.session = session_;
  header.seq = seq;
  std::vector<std::byte> frame(FrameHeader::kBytes);
  header.store(frame);
  if (type == FrameType::kHeartbeat) {
    transport_->send(Dir::kForward, std::move(frame));
    ++tstats_.heartbeats;
    heartbeats_counter_->add(1);
  } else {
    transport_->send(Dir::kReverse, std::move(frame));
  }
}

bool SessionComm::receiver_handle(std::vector<std::byte>& frame) {
  if (frame.size() < FrameHeader::kBytes) {
    ++tstats_.checksum_drops;
    checksum_drops_counter_->add(1);
    return true;
  }
  const FrameHeader header = FrameHeader::load(frame);
  if (header.magic != FrameHeader::kMagic ||
      FrameHeader::kBytes + header.payload_bytes != frame.size()) {
    ++tstats_.checksum_drops;
    checksum_drops_counter_->add(1);
    return true;
  }
  if (header.type == FrameType::kHeartbeat) {
    // Heartbeat answer doubles as a cumulative ack, so a probe also tells
    // the sender how far delivery actually got.
    send_control(FrameType::kAck, last_delivered_seq_);
    return true;
  }
  if (header.type != FrameType::kData) return true;

  std::span<std::byte> payload(frame.data() + FrameHeader::kBytes,
                               static_cast<std::size_t>(header.payload_bytes));
  if (tap_) tap_(payload);  // in-flight corruption seam (fault injector)
  if (wire_checksum(payload) != header.checksum) {
    // Corrupt payload never reaches the decoder; withholding the ack makes
    // the sender retransmit its pristine copy.
    ++tstats_.checksum_drops;
    checksum_drops_counter_->add(1);
    return true;
  }
  if (header.seq <= last_delivered_seq_) {
    // Idempotent replay: a duplicate (chaos dup, or a retransmission whose
    // original made it) is discarded and re-acked.
    ++tstats_.dup_discards;
    dup_discards_counter_->add(1);
    send_control(FrameType::kAck, last_delivered_seq_);
    return true;
  }
  if (header.seq == last_delivered_seq_ + 1) {
    delivered_q_.emplace_back(payload.begin(), payload.end());
    last_delivered_seq_ = header.seq;
    // Release any parked successors now contiguous.
    auto it = reorder_buffer_.begin();
    while (it != reorder_buffer_.end() &&
           it->first == last_delivered_seq_ + 1) {
      delivered_q_.push_back(std::move(it->second));
      last_delivered_seq_ = it->first;
      it = reorder_buffer_.erase(it);
    }
  } else {
    reorder_buffer_[header.seq].assign(payload.begin(), payload.end());
  }
  send_control(FrameType::kAck, last_delivered_seq_);
  return true;
}

bool SessionComm::sender_handle(const std::vector<std::byte>& frame) {
  if (frame.size() < FrameHeader::kBytes) return true;
  const FrameHeader header = FrameHeader::load(frame);
  if (header.magic != FrameHeader::kMagic ||
      header.type != FrameType::kAck) {
    return true;
  }
  while (!unacked_.empty() && unacked_.begin()->first <= header.seq) {
    const std::uint64_t seq = unacked_.begin()->first;
    auto tick_it = send_tick_.find(seq);
    if (tick_it != send_tick_.end()) {
      const double rtt_ms =
          static_cast<double>(transport_->now() - tick_it->second) *
          transport_->tick_seconds() * 1e3;
      rtt_hist_->observe(rtt_ms);
      send_tick_.erase(tick_it);
    }
    unacked_.erase(unacked_.begin());
  }
  return true;
}

bool SessionComm::drain() {
  bool any = false;
  std::vector<std::byte> frame;
  while (transport_->recv(Dir::kForward, frame)) {
    any = true;
    receiver_handle(frame);
  }
  while (transport_->recv(Dir::kReverse, frame)) {
    any = true;
    sender_handle(frame);
  }
  return any;
}

void SessionComm::retransmit_unacked() {
  for (const auto& [seq, frame] : unacked_) {
    (void)frame;
    transmit(seq);
    ++tstats_.retransmits;
    retransmits_counter_->add(1);
  }
}

void SessionComm::reconnect_with_backoff() {
  const std::uint64_t base =
      std::max<std::uint64_t>(1, ms_to_ticks(config_.backoff_base_ms));
  for (std::uint32_t attempt = 0; attempt < config_.reconnect_budget;
       ++attempt) {
    // Exponential virtual backoff: attempt a waits base * 2^a ticks.
    transport_->advance(base << std::min<std::uint32_t>(attempt, 20));
    if (transport_->try_reconnect()) {
      ++session_;
      ++tstats_.reconnects;
      reconnects_counter_->add(1);
      // Idempotent replay: every unacked frame goes out again under the
      // new session id; the receiver dedups any that already landed.
      retransmit_unacked();
      return;
    }
  }
  throw fault::LinkDeadError(worker_, transport_->name(),
                             config_.reconnect_budget);
}

void SessionComm::pump_until_acked() {
  pump_until([&] { return unacked_.empty(); });
}

void SessionComm::pump_until(const std::function<bool()>& done) {
  std::uint64_t last_progress = transport_->now();
  std::uint64_t last_sent = transport_->now();
  std::uint64_t retransmit_due = transport_->now() + rto_ticks_;
  std::uint64_t guard = 0;
  while (!done()) {
    if (++guard > kPumpGuard) {
      throw std::runtime_error("SessionComm: pump exceeded " +
                               std::to_string(kPumpGuard) +
                               " ticks without acking (protocol bug)");
    }
    transport_->advance();
    const std::uint64_t now = transport_->now();
    if (drain()) {
      last_progress = now;
      retransmit_due = now + rto_ticks_;
      continue;
    }
    if (!transport_->connected()) {
      reconnect_with_backoff();
      last_progress = transport_->now();
      last_sent = last_progress;
      retransmit_due = last_progress + rto_ticks_;
      continue;
    }
    if (now - last_progress >= timeout_ticks_) {
      // Dead silence past the cost-model deadline: treat the link as
      // failed even though it never reported a disconnect.
      reconnect_with_backoff();
      last_progress = transport_->now();
      last_sent = last_progress;
      retransmit_due = last_progress + rto_ticks_;
      continue;
    }
    if (now >= retransmit_due) {
      retransmit_unacked();
      last_sent = now;
      retransmit_due = now + rto_ticks_;
      continue;
    }
    if (now - last_sent >= heartbeat_ticks_) {
      send_control(FrameType::kHeartbeat, 0);
      last_sent = now;
    }
  }
}

void SessionComm::refresh_timers(std::size_t frame_bytes) {
  // Cost-model-derived timers, sized to this frame: RTO after a couple of
  // modeled round trips, heartbeat at the configured cadence, dead-link
  // declaration at max(4 x RTT, 3 x heartbeat) unless overridden.
  const std::uint64_t rtt_ticks = transport_->one_way_ticks(frame_bytes) +
                                  transport_->one_way_ticks(FrameHeader::kBytes) +
                                  2;
  heartbeat_ticks_ = ms_to_ticks(config_.heartbeat_ms);
  rto_ticks_ = 2 * rtt_ticks + 2;
  timeout_ticks_ =
      config_.timeout_ms > 0.0
          ? ms_to_ticks(config_.timeout_ms)
          : std::max<std::uint64_t>(4 * rtt_ticks, 3 * heartbeat_ticks_);
}

void SessionComm::submit_chunk(std::span<const std::byte> wire) {
  ensure_metrics();
  ensure_transport_metrics();
  const std::uint64_t seq = next_seq_++;
  unacked_[seq] = make_frame(FrameType::kData, seq, wire);
  refresh_timers(unacked_[seq].size());
  transmit(seq);
  ++outstanding_chunks_;
  // Opportunistic non-advancing drain: deliveries and acks that already
  // arrived are absorbed now, so await_chunk() often returns immediately.
  drain();
}

std::span<const std::byte> SessionComm::await_chunk() {
  if (outstanding_chunks_ == 0) {
    throw std::runtime_error(name() + ": await_chunk with nothing in flight");
  }
  // Corruption never surfaces here: a damaged frame fails its header
  // checksum at the receiver, the ack is withheld and the pristine stored
  // frame is retransmitted — the session heals below the chunk API.
  pump_until([&] { return !delivered_q_.empty(); });
  awaited_ = std::move(delivered_q_.front());
  delivered_q_.pop_front();
  --outstanding_chunks_;
  const std::size_t billed = awaited_.size() + FrameHeader::kBytes;
  stats_.wire_bytes += billed;
  stats_.copies += 2;  // sender frame pack + receiver delivery
  stats_.messages += 1;
  wire_bytes_counter_->add(billed);
  transfers_counter_->add(1);
  messages_counter_->add(1);
  return awaited_;
}

void SessionComm::settle_chunks() {
  if (unacked_.empty()) return;
  ensure_transport_metrics();
  pump_until_acked();
}

void SessionComm::transfer(std::span<const float> src, std::span<float> dst,
                           Codec& codec) {
  assert(src.size() == dst.size());
  ensure_metrics();
  ensure_transport_metrics();
  obs::ScopedSpan span("transfer", obs::kCommCategory);
  const std::size_t wire = codec.encoded_bytes(src.size());

  std::vector<std::byte> payload(wire);
  util::Stopwatch codec_watch;
  codec.encode(src, payload);
  double codec_s = codec_watch.seconds();

  const std::uint64_t seq = next_seq_++;
  unacked_[seq] = make_frame(FrameType::kData, seq, payload);
  delivered_q_.clear();
  refresh_timers(unacked_[seq].size());

  transmit(seq);
  pump_until_acked();

  if (delivered_q_.empty() || delivered_q_.front().size() != wire) {
    throw std::runtime_error(
        "SessionComm: transfer acked without a matching delivery");
  }
  awaited_ = std::move(delivered_q_.front());
  delivered_q_.pop_front();
  codec_watch.reset();
  codec.decode(std::span<const std::byte>(awaited_.data(), wire), dst);
  codec_s += codec_watch.seconds();
  codec_hist_->observe(codec_s);

  const std::size_t billed = wire + FrameHeader::kBytes;
  stats_.wire_bytes += billed;
  stats_.copies += 2;  // sender frame pack + receiver delivery
  stats_.messages += 1;
  wire_bytes_counter_->add(billed);
  transfers_counter_->add(1);
  messages_counter_->add(1);
  span.arg("bytes", std::to_string(billed));
}

}  // namespace hcc::comm
