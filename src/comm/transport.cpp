#include "comm/transport.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace hcc::comm {

const char* transport_kind_name(TransportKind kind) {
  switch (kind) {
    case TransportKind::kInProcess: return "in-process";
    case TransportKind::kSimLatency: return "sim-latency";
    case TransportKind::kChaos: return "chaos";
  }
  return "?";
}

TransportKind transport_kind_by_name(const std::string& name) {
  if (name == "in-process") return TransportKind::kInProcess;
  if (name == "sim-latency") return TransportKind::kSimLatency;
  if (name == "chaos") return TransportKind::kChaos;
  throw std::invalid_argument("unknown transport kind '" + name +
                              "' (in-process, sim-latency, chaos)");
}

void InProcessTransport::send(Dir dir, std::vector<std::byte> frame) {
  queues_[static_cast<std::size_t>(dir)].push_back(std::move(frame));
}

bool InProcessTransport::recv(Dir dir, std::vector<std::byte>& frame) {
  auto& q = queues_[static_cast<std::size_t>(dir)];
  if (q.empty()) return false;
  frame = std::move(q.front());
  q.pop_front();
  return true;
}

SimLatencyTransport::SimLatencyTransport(sim::LinkSpec link)
    : link_(std::move(link)), tick_s_(std::max(link_.latency_s, 1e-6)) {}

std::uint64_t SimLatencyTransport::one_way_ticks(std::size_t bytes) const {
  const double sustained = link_.bandwidth_gbs * link_.efficiency * 1e9;
  const double serialize_s =
      sustained > 0.0 ? static_cast<double>(bytes) / sustained : 0.0;
  const double ticks = (link_.latency_s + serialize_s) / tick_s_;
  return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(
                                        std::ceil(ticks)));
}

void SimLatencyTransport::enqueue(Dir dir, std::vector<std::byte> frame,
                                  std::uint64_t arrival) {
  auto& q = queues_[static_cast<std::size_t>(dir)];
  // Head-of-line stream semantics: a frame never arrives before the one
  // enqueued ahead of it.
  if (!q.empty()) arrival = std::max(arrival, q.back().arrival);
  q.push_back(Timed{arrival, std::move(frame)});
}

void SimLatencyTransport::clear_in_flight() {
  queues_[0].clear();
  queues_[1].clear();
}

void SimLatencyTransport::send(Dir dir, std::vector<std::byte> frame) {
  const std::uint64_t arrival = now_ + one_way_ticks(frame.size());
  enqueue(dir, std::move(frame), arrival);
}

bool SimLatencyTransport::recv(Dir dir, std::vector<std::byte>& frame) {
  auto& q = queues_[static_cast<std::size_t>(dir)];
  if (q.empty() || q.front().arrival > now_) return false;
  frame = std::move(q.front().frame);
  q.pop_front();
  return true;
}

ChaosTransport::ChaosTransport(sim::LinkSpec link,
                               const fault::FaultPlan& plan,
                               std::uint32_t worker)
    : SimLatencyTransport(std::move(link)), worker_(worker) {
  for (const fault::FaultEvent& event : plan.events) {
    if (event.worker != worker_) continue;
    if (!fault::is_transport_fault(event.kind)) continue;
    schedule_.push_back(Scheduled{event, event.count, false});
  }
}

void ChaosTransport::ensure_metrics() {
  if (drops_counter_ != nullptr) return;
  drops_counter_ = &obs::registry().counter("transport.drops");
}

ChaosTransport::Scheduled* ChaosTransport::match(fault::FaultKind kind) {
  for (Scheduled& s : schedule_) {
    if (s.event.kind == kind && s.event.epoch == epoch_ && s.remaining > 0) {
      return &s;
    }
  }
  return nullptr;
}

void ChaosTransport::begin_epoch(std::uint32_t epoch) { epoch_ = epoch; }

void ChaosTransport::sever() {
  connected_ = false;
  holding_ = false;
  held_.clear();
  clear_in_flight();
}

void ChaosTransport::send(Dir dir, std::vector<std::byte> frame) {
  ensure_metrics();
  if (!connected_) {
    // A severed link swallows traffic in both directions.
    ++dropped_;
    drops_counter_->add(1);
    return;
  }
  if (dir == Dir::kReverse) {
    // The chaos schedule models the worker-side path; acks flow clean so
    // every scripted scenario has a deterministic healing story.
    SimLatencyTransport::send(dir, std::move(frame));
    return;
  }

  // Disconnect outranks per-frame faults: the link severs at the first
  // frame of the scripted epoch and this frame is lost with it.
  if (Scheduled* disc = match(fault::FaultKind::kDisconnect)) {
    if (!disc->triggered) {
      disc->triggered = true;
      sever();
      ++dropped_;
      drops_counter_->add(1);
      return;
    }
  }

  if (Scheduled* s = match(fault::FaultKind::kDrop)) {
    --s->remaining;
    ++dropped_;
    drops_counter_->add(1);
    return;
  }
  if (Scheduled* s = match(fault::FaultKind::kDuplicate)) {
    --s->remaining;
    std::vector<std::byte> copy = frame;
    SimLatencyTransport::send(dir, std::move(frame));
    SimLatencyTransport::send(dir, std::move(copy));
    return;
  }
  if (Scheduled* s = match(fault::FaultKind::kReorder)) {
    if (!holding_) {
      --s->remaining;
      holding_ = true;
      held_ = std::move(frame);
      return;
    }
  }
  if (Scheduled* s = match(fault::FaultKind::kDelay)) {
    --s->remaining;
    const std::uint64_t arrival =
        now_ + one_way_ticks(frame.size()) + s->event.delay_ticks;
    enqueue(dir, std::move(frame), arrival);
    if (holding_) {
      // A held (reordered) frame rides out behind its follower.
      holding_ = false;
      SimLatencyTransport::send(dir, std::move(held_));
    }
    return;
  }

  SimLatencyTransport::send(dir, std::move(frame));
  if (holding_) {
    holding_ = false;
    SimLatencyTransport::send(dir, std::move(held_));
  }
}

bool ChaosTransport::recv(Dir dir, std::vector<std::byte>& frame) {
  if (!connected_) return false;
  return SimLatencyTransport::recv(dir, frame);
}

bool ChaosTransport::try_reconnect() {
  if (connected_) return true;
  for (Scheduled& s : schedule_) {
    if (s.event.kind == fault::FaultKind::kDisconnect && s.triggered &&
        s.remaining > 0) {
      // The scripted outage: the first `count` reconnection attempts fail.
      --s.remaining;
      return false;
    }
  }
  connected_ = true;
  return true;
}

std::unique_ptr<Transport> make_transport(const TransportConfig& config,
                                          std::uint32_t worker) {
  switch (config.kind) {
    case TransportKind::kInProcess:
      return std::make_unique<InProcessTransport>();
    case TransportKind::kSimLatency:
      return std::make_unique<SimLatencyTransport>(
          sim::link_by_name(config.link));
    case TransportKind::kChaos:
      return std::make_unique<ChaosTransport>(sim::link_by_name(config.link),
                                              config.plan, worker);
  }
  throw std::invalid_argument("unknown TransportKind");
}

}  // namespace hcc::comm
