#include "mf/model_io.hpp"

#include <array>
#include <fstream>
#include <stdexcept>

namespace hcc::mf {

namespace {
constexpr std::array<char, 4> kMagic = {'H', 'C', 'C', 'F'};
constexpr std::uint32_t kVersion = 1;
}  // namespace

bool save_model(const FactorModel& model, std::ostream& out) {
  out.write(kMagic.data(), kMagic.size());
  const std::uint32_t version = kVersion;
  const std::uint32_t users = model.users();
  const std::uint32_t items = model.items();
  const std::uint32_t k = model.k();
  out.write(reinterpret_cast<const char*>(&version), sizeof version);
  out.write(reinterpret_cast<const char*>(&users), sizeof users);
  out.write(reinterpret_cast<const char*>(&items), sizeof items);
  out.write(reinterpret_cast<const char*>(&k), sizeof k);
  const auto p = model.p_data();
  const auto q = model.q_data();
  out.write(reinterpret_cast<const char*>(p.data()),
            static_cast<std::streamsize>(p.size() * sizeof(float)));
  out.write(reinterpret_cast<const char*>(q.data()),
            static_cast<std::streamsize>(q.size() * sizeof(float)));
  return static_cast<bool>(out);
}

FactorModel load_model(std::istream& in, const std::string& context) {
  std::array<char, 4> magic{};
  in.read(magic.data(), magic.size());
  if (!in || magic != kMagic) {
    throw std::runtime_error(context + ": bad magic");
  }
  std::uint32_t version = 0;
  std::uint32_t users = 0;
  std::uint32_t items = 0;
  std::uint32_t k = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof version);
  if (in && version != kVersion) {
    throw std::runtime_error(context + ": unsupported version " +
                             std::to_string(version));
  }
  in.read(reinterpret_cast<char*>(&users), sizeof users);
  in.read(reinterpret_cast<char*>(&items), sizeof items);
  in.read(reinterpret_cast<char*>(&k), sizeof k);
  if (!in) throw std::runtime_error(context + ": truncated header");
  FactorModel model(users, items, k);
  auto p = model.p_data();
  auto q = model.q_data();
  in.read(reinterpret_cast<char*>(p.data()),
          static_cast<std::streamsize>(p.size() * sizeof(float)));
  in.read(reinterpret_cast<char*>(q.data()),
          static_cast<std::streamsize>(q.size() * sizeof(float)));
  if (!in) throw std::runtime_error(context + ": truncated factors");
  return model;
}

bool save_model(const FactorModel& model, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  return save_model(model, out);
}

FactorModel load_model(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  return load_model(in, path);
}

}  // namespace hcc::mf
