#include "mf/dsgd.hpp"

#include <algorithm>
#include <future>

#include "mf/kernels.hpp"

namespace hcc::mf {

DsgdTrainer::DsgdTrainer(const SgdConfig& config, util::ThreadPool& pool,
                         std::uint32_t workers)
    : Trainer(config), pool_(pool), workers_(std::max(1u, workers)) {}

void DsgdTrainer::build_blocks(const data::RatingMatrix& ratings) {
  const std::uint32_t p = workers_;
  blocks_.assign(std::size_t(p) * p, {});
  // Even row/column split — DSGD's homogeneity assumption.
  for (const auto& e : ratings.entries()) {
    const std::uint32_t rb = static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(e.u) * p) / std::max(1u, ratings.rows()));
    const std::uint32_t cb = static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(e.i) * p) / std::max(1u, ratings.cols()));
    blocks_[std::size_t(rb) * p + cb].push_back(e);
  }
  cached_data_ = ratings.entries().data();
  cached_nnz_ = ratings.nnz();
}

void DsgdTrainer::train_epoch(FactorModel& model,
                              const data::RatingMatrix& ratings) {
  if (cached_data_ != ratings.entries().data() ||
      cached_nnz_ != ratings.nnz()) {
    build_blocks(ratings);
  }
  const std::uint32_t p = workers_;
  const std::uint32_t k = model.k();
  const float lr = lr_;
  const float reg_p = config_.reg_p;
  const float reg_q = config_.reg_q;

  for (std::uint32_t stratum = 0; stratum < p; ++stratum) {
    // Blocks {(w, (w+stratum) mod p)} are row/column disjoint: parallel,
    // conflict-free.  Barrier at the end of each stratum.
    std::vector<std::future<void>> pending;
    for (std::uint32_t w = 0; w < p; ++w) {
      const std::uint32_t cb = (w + stratum) % p;
      const auto& block = blocks_[std::size_t(w) * p + cb];
      if (block.empty()) continue;
      pending.push_back(pool_.submit([&model, &block, k, lr, reg_p, reg_q] {
        for (const auto& e : block) {
          sgd_update_dispatch(model.p(e.u), model.q(e.i), k, e.r, lr,
                              reg_p, reg_q);
        }
      }));
    }
    for (auto& f : pending) f.get();
  }
  decay_lr();
}

}  // namespace hcc::mf
