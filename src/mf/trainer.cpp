#include "mf/trainer.hpp"

#include "mf/kernels.hpp"
#include "mf/metrics.hpp"

namespace hcc::mf {

void SerialSgd::train_epoch(FactorModel& model,
                            const data::RatingMatrix& ratings) {
  const std::uint32_t k = model.k();
  for (const auto& e : ratings.entries()) {
    sgd_update_dispatch(model.p(e.u), model.q(e.i), k, e.r, lr_,
                        config_.reg_p, config_.reg_q);
  }
  decay_lr();
}

std::vector<double> train_and_trace(Trainer& trainer, FactorModel& model,
                                    const data::RatingMatrix& train,
                                    const data::RatingMatrix& test,
                                    std::uint32_t epochs) {
  std::vector<double> trace;
  trace.reserve(epochs);
  for (std::uint32_t e = 0; e < epochs; ++e) {
    trainer.train_epoch(model, train);
    trace.push_back(rmse(model, test));
  }
  return trace;
}

}  // namespace hcc::mf
