#include "mf/biased.hpp"

#include <cmath>

#include "mf/kernels.hpp"

namespace hcc::mf {

BiasedModel::BiasedModel(std::uint32_t users, std::uint32_t items,
                         std::uint32_t k)
    : factors_(users, items, k),
      user_bias_(users, 0.0f),
      item_bias_(items, 0.0f) {}

void BiasedModel::init_random(util::Rng& rng, float mean_rating) {
  global_bias_ = mean_rating;
  // Factors model the residual around the biases: small zero-mean init.
  const float scale =
      0.1f / std::sqrt(static_cast<float>(std::max(1u, k())));
  for (auto& v : factors_.p_data()) {
    v = static_cast<float>(rng.normal(0.0, scale));
  }
  for (auto& v : factors_.q_data()) {
    v = static_cast<float>(rng.normal(0.0, scale));
  }
}

float BiasedModel::predict(std::uint32_t u, std::uint32_t i) const noexcept {
  return global_bias_ + user_bias_[u] + item_bias_[i] +
         factors_.predict(u, i);
}

float biased_sgd_update(BiasedModel& model, std::uint32_t u, std::uint32_t i,
                        float r, float lr, float reg_factor,
                        float reg_bias) noexcept {
  const float err = r - model.predict(u, i);
  float& bu = model.user_bias(u);
  float& bi = model.item_bias(i);
  bu += lr * (err - reg_bias * bu);
  bi += lr * (err - reg_bias * bi);
  sgd_update_with_error_dispatch(model.p(u), model.q(i), model.k(), err, lr,
                                 reg_factor, reg_factor);
  return err;
}

void BiasedSgd::train_epoch(BiasedModel& model,
                            const data::RatingMatrix& ratings) {
  for (const auto& e : ratings.entries()) {
    biased_sgd_update(model, e.u, e.i, e.r, config_.learn_rate,
                      config_.reg_p, 0.005f);
  }
}

double rmse(const BiasedModel& model, const data::RatingMatrix& ratings) {
  if (ratings.nnz() == 0) return 0.0;
  double sq = 0.0;
  for (const auto& e : ratings.entries()) {
    const double err = static_cast<double>(e.r) - model.predict(e.u, e.i);
    sq += err * err;
  }
  return std::sqrt(sq / static_cast<double>(ratings.nnz()));
}

}  // namespace hcc::mf
