// Biased matrix factorization (extension).
//
// Production recommenders extend the plain P*Q model with a global mean and
// per-user/per-item bias terms: r_hat = mu + b_u + b_i + <p_u, q_i>.  The
// paper trains the plain model; this extension exists because real rating
// data is dominated by user/item effects, and it demonstrates that the
// substrate (kernel shape, trainer structure) generalizes beyond the
// paper's exact loss.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/rating_matrix.hpp"
#include "mf/model.hpp"
#include "util/rng.hpp"

namespace hcc::mf {

/// Factors plus bias terms.
class BiasedModel {
 public:
  BiasedModel() = default;
  BiasedModel(std::uint32_t users, std::uint32_t items, std::uint32_t k);

  /// Random factor init around zero plus `mean_rating` as the global bias —
  /// the standard biased-MF initialization (factors only model residuals).
  void init_random(util::Rng& rng, float mean_rating);

  std::uint32_t users() const noexcept { return factors_.users(); }
  std::uint32_t items() const noexcept { return factors_.items(); }
  std::uint32_t k() const noexcept { return factors_.k(); }

  float global_bias() const noexcept { return global_bias_; }
  float& user_bias(std::uint32_t u) noexcept { return user_bias_[u]; }
  float& item_bias(std::uint32_t i) noexcept { return item_bias_[i]; }
  float user_bias(std::uint32_t u) const noexcept { return user_bias_[u]; }
  float item_bias(std::uint32_t i) const noexcept { return item_bias_[i]; }

  float* p(std::uint32_t u) noexcept { return factors_.p(u); }
  float* q(std::uint32_t i) noexcept { return factors_.q(i); }

  /// r_hat(u, i) = mu + b_u + b_i + <p_u, q_i>.
  float predict(std::uint32_t u, std::uint32_t i) const noexcept;

 private:
  FactorModel factors_;
  std::vector<float> user_bias_;
  std::vector<float> item_bias_;
  float global_bias_ = 0.0f;
};

/// One biased SGD step; returns the pre-update error.  Biases get the same
/// learning rate and their own regularization `reg_bias`.
float biased_sgd_update(BiasedModel& model, std::uint32_t u, std::uint32_t i,
                        float r, float lr, float reg_factor,
                        float reg_bias) noexcept;

/// Epoch-at-a-time biased trainer (serial; the HCC worker integration of
/// the bias vectors is left as documented future work — they would ride
/// along with Q in the COMM payload at +n floats).
class BiasedSgd {
 public:
  explicit BiasedSgd(const SgdConfig& config) : config_(config) {}

  void train_epoch(BiasedModel& model, const data::RatingMatrix& ratings);

  std::string name() const { return "biased-sgd"; }

 private:
  SgdConfig config_;
};

/// RMSE of a biased model.
double rmse(const BiasedModel& model, const data::RatingMatrix& ratings);

}  // namespace hcc::mf
