// DSGD: distributed stratified SGD (Gemulla, Nijkamp, Haas, Sismanis,
// KDD 2011) — the distributed-solution baseline of the paper's Related
// Work.  The rating matrix is blocked p x p; an epoch runs p strata, where
// stratum s is the set of blocks {(w, (w+s) mod p)} — row- and column-
// disjoint, so the p workers update their blocks truly in parallel with no
// conflicts, with a barrier between strata.
//
// The paper adopts DSGD's workflow shape (MapReduce/parameter-server
// rounds) but criticizes its *even* row split, which ignores heterogeneous
// machine speed; the even split here is faithful to that.
#pragma once

#include <cstdint>
#include <vector>

#include "mf/trainer.hpp"
#include "util/thread_pool.hpp"

namespace hcc::mf {

/// Stratified parallel SGD.
class DsgdTrainer final : public Trainer {
 public:
  /// `workers` parallel workers (= strata per epoch).
  DsgdTrainer(const SgdConfig& config, util::ThreadPool& pool,
              std::uint32_t workers);

  void train_epoch(FactorModel& model,
                   const data::RatingMatrix& ratings) override;

  std::string name() const override { return "dsgd"; }

  std::uint32_t workers() const noexcept { return workers_; }

 private:
  void build_blocks(const data::RatingMatrix& ratings);

  util::ThreadPool& pool_;
  std::uint32_t workers_;

  const void* cached_data_ = nullptr;
  std::size_t cached_nnz_ = 0;
  std::vector<std::vector<data::Rating>> blocks_;  // workers x workers
};

}  // namespace hcc::mf
