// Learning-rate schedules.
//
// The paper trains with a fixed gamma = 0.005; practical MF systems decay
// the step size.  These schedule objects plug into any trainer loop (and
// HccMf's epoch loop via SgdConfig::lr_decay for the simple exponential
// case); the bold driver is the classic MF heuristic (grow on improvement,
// shrink on regression) used by the original DSGD paper.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>

namespace hcc::mf {

/// Produces the learning rate for each epoch.
class LrSchedule {
 public:
  virtual ~LrSchedule() = default;

  /// Rate to use for epoch `epoch` (0-based).  `last_objective` is the
  /// training loss after the previous epoch (NaN for epoch 0); adaptive
  /// schedules use it.
  virtual float rate(std::uint32_t epoch, double last_objective) = 0;

  virtual std::string name() const = 0;
};

/// Constant gamma (the paper's setting).
class ConstantLr final : public LrSchedule {
 public:
  explicit ConstantLr(float lr) : lr_(lr) {}
  float rate(std::uint32_t, double) override { return lr_; }
  std::string name() const override { return "constant"; }

 private:
  float lr_;
};

/// lr * decay^epoch.
class ExponentialDecayLr final : public LrSchedule {
 public:
  ExponentialDecayLr(float lr, float decay) : lr_(lr), decay_(decay) {}
  float rate(std::uint32_t epoch, double) override;
  std::string name() const override { return "exponential"; }

 private:
  float lr_;
  float decay_;
};

/// lr / (1 + epoch / tau) — the inverse-time schedule with SGD's classic
/// O(1/t) asymptotics.
class InverseTimeLr final : public LrSchedule {
 public:
  InverseTimeLr(float lr, float tau) : lr_(lr), tau_(std::max(1e-6f, tau)) {}
  float rate(std::uint32_t epoch, double) override;
  std::string name() const override { return "inverse-time"; }

 private:
  float lr_;
  float tau_;
};

/// Bold driver: +5% after an improving epoch, halve after a regression.
class BoldDriverLr final : public LrSchedule {
 public:
  explicit BoldDriverLr(float lr, float grow = 1.05f, float shrink = 0.5f)
      : lr_(lr), grow_(grow), shrink_(shrink) {}
  float rate(std::uint32_t epoch, double last_objective) override;
  std::string name() const override { return "bold-driver"; }

 private:
  float lr_;
  float grow_;
  float shrink_;
  double prev_objective_ = 0.0;
  bool has_prev_ = false;
};

/// Factory from a name ("constant", "exponential", "inverse-time",
/// "bold-driver"); throws std::invalid_argument on unknown names.
std::unique_ptr<LrSchedule> make_lr_schedule(const std::string& name,
                                             float lr);

}  // namespace hcc::mf
