#include "mf/recommend.hpp"

#include <algorithm>
#include <cmath>

namespace hcc::mf {

SeenIndex::SeenIndex(const data::RatingMatrix& train)
    : items_(train.rows()) {
  for (const auto& e : train.entries()) items_[e.u].push_back(e.i);
  for (auto& v : items_) std::sort(v.begin(), v.end());
}

bool SeenIndex::seen(std::uint32_t user, std::uint32_t item) const {
  const auto& v = items_[user];
  return std::binary_search(v.begin(), v.end(), item);
}

std::vector<ScoredItem> top_n(const FactorModel& model, const SeenIndex& seen,
                              std::uint32_t user, std::size_t n) {
  // Min-heap of the current best n, so memory stays O(n) even for huge
  // catalogues.
  auto worse = [](const ScoredItem& a, const ScoredItem& b) {
    return a.score > b.score;  // heap root = weakest of the kept items
  };
  std::vector<ScoredItem> heap;
  heap.reserve(n + 1);
  for (std::uint32_t item = 0; item < model.items(); ++item) {
    if (seen.seen(user, item)) continue;
    const float score = model.predict(user, item);
    if (heap.size() < n) {
      heap.push_back({item, score});
      std::push_heap(heap.begin(), heap.end(), worse);
    } else if (!heap.empty() && score > heap.front().score) {
      std::pop_heap(heap.begin(), heap.end(), worse);
      heap.back() = {item, score};
      std::push_heap(heap.begin(), heap.end(), worse);
    }
  }
  // sort_heap orders ascending by the comparator, i.e. descending score:
  // best first, as documented.
  std::sort_heap(heap.begin(), heap.end(), worse);
  return heap;
}

double mae(const FactorModel& model, const data::RatingMatrix& ratings) {
  if (ratings.nnz() == 0) return 0.0;
  double total = 0.0;
  for (const auto& e : ratings.entries()) {
    total += std::abs(static_cast<double>(e.r) - model.predict(e.u, e.i));
  }
  return total / static_cast<double>(ratings.nnz());
}

double hit_rate_at_n(const FactorModel& model,
                     const data::RatingMatrix& train,
                     const data::RatingMatrix& test, std::size_t n,
                     float relevant_min) {
  const SeenIndex seen(train);
  std::size_t trials = 0;
  std::size_t hits = 0;
  // Group test entries per user so top_n runs once per user.
  std::vector<std::vector<const data::Rating*>> by_user(train.rows());
  for (const auto& e : test.entries()) {
    if (e.r >= relevant_min) by_user[e.u].push_back(&e);
  }
  for (std::uint32_t u = 0; u < train.rows(); ++u) {
    if (by_user[u].empty()) continue;
    const auto recs = top_n(model, seen, u, n);
    for (const auto* e : by_user[u]) {
      ++trials;
      for (const auto& r : recs) {
        if (r.item == e->i) {
          ++hits;
          break;
        }
      }
    }
  }
  return trials == 0 ? 0.0
                     : static_cast<double>(hits) / static_cast<double>(trials);
}

}  // namespace hcc::mf
