#include "mf/recommend.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "simd/dispatch.hpp"
#include "simd/prefetch.hpp"

namespace hcc::mf {

SeenIndex::SeenIndex(const data::RatingMatrix& train)
    : items_(train.rows()) {
  for (const auto& e : train.entries()) items_[e.u].push_back(e.i);
  for (auto& v : items_) std::sort(v.begin(), v.end());
}

bool SeenIndex::seen(std::uint32_t user, std::uint32_t item) const {
  const auto& v = items_[user];
  return std::binary_search(v.begin(), v.end(), item);
}

std::vector<ScoredItem> top_n(const FactorModel& model, const SeenIndex& seen,
                              std::uint32_t user, std::size_t n) {
  constexpr std::uint32_t kBlock = 256;  // 256 k-float rows per score pass
  const auto& kt = simd::kernels();
  const std::uint32_t k = model.k();
  const float* user_row = model.p(user);
  const auto seen_items = seen.items(user);
  std::array<float, kBlock> scores;
  std::array<std::uint8_t, kBlock / 8> mask;
  // Min-heap of the current best n, so memory stays O(n) even for huge
  // catalogues.
  auto worse = [](const ScoredItem& a, const ScoredItem& b) {
    return a.score > b.score;  // heap root = weakest of the kept items
  };
  std::vector<ScoredItem> heap;
  heap.reserve(n + 1);
  std::size_t cursor = 0;  // walks the sorted seen list in step with blocks
  for (std::uint32_t lo = 0; lo < model.items(); lo += kBlock) {
    const std::uint32_t count =
        std::min<std::uint32_t>(kBlock, model.items() - lo);
    mask.fill(0);
    while (cursor < seen_items.size() && seen_items[cursor] < lo + count) {
      const std::uint32_t off = seen_items[cursor] - lo;
      mask[off / 8] |= static_cast<std::uint8_t>(1u << (off % 8));
      ++cursor;
    }
    if (lo + kBlock < model.items()) simd::prefetch_row(model.q(lo + kBlock), k);
    kt.score_block(user_row, model.q(lo), k, count, mask.data(), scores.data());
    float block_max = -std::numeric_limits<float>::infinity();
    for (std::uint32_t i = 0; i < count; ++i) {
      block_max = std::max(block_max, scores[i]);
    }
    // Seen items score -inf, so once the heap is full a block whose best
    // score cannot beat the weakest kept item is skipped wholesale.
    if (heap.size() == n && (n == 0 || block_max <= heap.front().score)) {
      continue;
    }
    for (std::uint32_t i = 0; i < count; ++i) {
      if (((mask[i / 8] >> (i % 8)) & 1u) != 0) continue;
      const float score = scores[i];
      const std::uint32_t item = lo + i;
      if (heap.size() < n) {
        heap.push_back({item, score});
        std::push_heap(heap.begin(), heap.end(), worse);
      } else if (!heap.empty() && score > heap.front().score) {
        std::pop_heap(heap.begin(), heap.end(), worse);
        heap.back() = {item, score};
        std::push_heap(heap.begin(), heap.end(), worse);
      }
    }
  }
  // sort_heap orders ascending by the comparator, i.e. descending score:
  // best first, as documented.
  std::sort_heap(heap.begin(), heap.end(), worse);
  return heap;
}

double mae(const FactorModel& model, const data::RatingMatrix& ratings) {
  if (ratings.nnz() == 0) return 0.0;
  double total = 0.0;
  for (const auto& e : ratings.entries()) {
    total += std::abs(static_cast<double>(e.r) - model.predict(e.u, e.i));
  }
  return total / static_cast<double>(ratings.nnz());
}

double hit_rate_at_n(const FactorModel& model,
                     const data::RatingMatrix& train,
                     const data::RatingMatrix& test, std::size_t n,
                     float relevant_min) {
  const SeenIndex seen(train);
  std::size_t trials = 0;
  std::size_t hits = 0;
  // Group test entries per user so top_n runs once per user.
  std::vector<std::vector<const data::Rating*>> by_user(train.rows());
  for (const auto& e : test.entries()) {
    if (e.r >= relevant_min) by_user[e.u].push_back(&e);
  }
  for (std::uint32_t u = 0; u < train.rows(); ++u) {
    if (by_user[u].empty()) continue;
    const auto recs = top_n(model, seen, u, n);
    for (const auto* e : by_user[u]) {
      ++trials;
      for (const auto& r : recs) {
        if (r.item == e->i) {
          ++hits;
          break;
        }
      }
    }
  }
  return trials == 0 ? 0.0
                     : static_cast<double>(hits) / static_cast<double>(trials);
}

}  // namespace hcc::mf
