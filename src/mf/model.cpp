#include "mf/model.hpp"

#include <cmath>

#include "simd/dispatch.hpp"

namespace hcc::mf {

FactorModel::FactorModel(std::uint32_t users, std::uint32_t items,
                         std::uint32_t k)
    : users_(users),
      items_(items),
      k_(k),
      p_(std::size_t(users) * k, 0.0f),
      q_(std::size_t(items) * k, 0.0f) {}

void FactorModel::init_random(util::Rng& rng, float mean_rating) {
  const float scale = std::sqrt(mean_rating / static_cast<float>(k_));
  for (auto& v : p_) v = static_cast<float>(rng.uniform()) * scale;
  for (auto& v : q_) v = static_cast<float>(rng.uniform()) * scale;
}

float FactorModel::predict(std::uint32_t u, std::uint32_t i) const noexcept {
  return simd::kernels().dot(p(u), q(i), k_);
}

}  // namespace hcc::mf
