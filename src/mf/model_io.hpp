// Factor model serialization.
//
// The final P and Q are the deliverable of a training run (the server's
// last P&Q push); this module persists them so a recommender can serve a
// model trained elsewhere.  Binary format: magic "HCCF", version, dims,
// then the raw P and Q arrays.
#pragma once

#include <iosfwd>
#include <string>

#include "mf/model.hpp"

namespace hcc::mf {

/// Writes the model; returns false on IO failure.
bool save_model(const FactorModel& model, const std::string& path);

/// Reads a model back.  Throws std::runtime_error on bad magic/version or
/// truncation.
FactorModel load_model(const std::string& path);

/// Stream variants, so the model format can be embedded inside composite
/// records (the fault subsystem's checkpoints append it after their own
/// header).  `context` labels error messages (a path or a description).
bool save_model(const FactorModel& model, std::ostream& out);
FactorModel load_model(std::istream& in, const std::string& context);

}  // namespace hcc::mf
