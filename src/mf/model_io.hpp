// Factor model serialization.
//
// The final P and Q are the deliverable of a training run (the server's
// last P&Q push); this module persists them so a recommender can serve a
// model trained elsewhere.  Binary format: magic "HCCF", version, dims,
// then the raw P and Q arrays.
#pragma once

#include <string>

#include "mf/model.hpp"

namespace hcc::mf {

/// Writes the model; returns false on IO failure.
bool save_model(const FactorModel& model, const std::string& path);

/// Reads a model back.  Throws std::runtime_error on bad magic/version or
/// truncation.
FactorModel load_model(const std::string& path);

}  // namespace hcc::mf
