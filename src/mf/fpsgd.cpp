#include "mf/fpsgd.hpp"

#include <algorithm>
#include <cassert>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "mf/kernels.hpp"

namespace hcc::mf {

FpsgdTrainer::FpsgdTrainer(const SgdConfig& config, std::uint32_t threads)
    : Trainer(config), threads_(std::max(1u, threads)), rng_(config.seed) {}

void FpsgdTrainer::build_grid(const data::RatingMatrix& ratings) {
  const std::uint32_t nb = bands();
  blocks_.assign(std::size_t(nb) * nb, {});

  // Band boundaries split rows/columns evenly; real FPSGD random-shuffles
  // rows first, which our datasets already are (generator shuffles ids).
  row_band_of_.resize(ratings.rows());
  col_band_of_.resize(ratings.cols());
  for (std::uint32_t r = 0; r < ratings.rows(); ++r) {
    row_band_of_[r] = static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(r) * nb) / std::max(1u, ratings.rows()));
  }
  for (std::uint32_t c = 0; c < ratings.cols(); ++c) {
    col_band_of_[c] = static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(c) * nb) / std::max(1u, ratings.cols()));
  }
  for (const auto& e : ratings.entries()) {
    blocks_[std::size_t(row_band_of_[e.u]) * nb + col_band_of_[e.i]]
        .push_back(e);
  }
  cached_data_ = ratings.entries().data();
  cached_nnz_ = ratings.nnz();
}

void FpsgdTrainer::train_epoch(FactorModel& model,
                               const data::RatingMatrix& ratings) {
  if (cached_data_ != ratings.entries().data() ||
      cached_nnz_ != ratings.nnz()) {
    build_grid(ratings);
  }
  const std::uint32_t nb = bands();
  const std::uint32_t k = model.k();
  const float lr = lr_;
  const float reg_p = config_.reg_p;
  const float reg_q = config_.reg_q;

  // Scheduler state, all guarded by `mutex`.
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<bool> row_busy(nb, false);
  std::vector<bool> col_busy(nb, false);
  std::vector<bool> done(std::size_t(nb) * nb, false);
  std::uint32_t remaining = nb * nb;

  // Picks a free, unprocessed block or blocks until one frees up; returns
  // nb*nb when the epoch is complete.
  auto acquire = [&]() -> std::uint32_t {
    std::unique_lock lock(mutex);
    for (;;) {
      if (remaining == 0) return nb * nb;
      std::uint32_t best = nb * nb;
      std::size_t best_size = 0;
      for (std::uint32_t rb = 0; rb < nb; ++rb) {
        if (row_busy[rb]) continue;
        for (std::uint32_t cb = 0; cb < nb; ++cb) {
          if (col_busy[cb]) continue;
          const std::uint32_t b = rb * nb + cb;
          if (done[b]) continue;
          // Prefer the fullest block so stragglers don't pile up at the end.
          if (best == nb * nb || blocks_[b].size() > best_size) {
            best = b;
            best_size = blocks_[b].size();
          }
        }
      }
      if (best != nb * nb) {
        row_busy[best / nb] = true;
        col_busy[best % nb] = true;
        return best;
      }
      cv.wait(lock);
    }
  };

  auto release = [&](std::uint32_t block) {
    {
      std::lock_guard lock(mutex);
      row_busy[block / nb] = false;
      col_busy[block % nb] = false;
      done[block] = true;
      --remaining;
    }
    cv.notify_all();
  };

  auto worker = [&] {
    for (;;) {
      const std::uint32_t block = acquire();
      if (block == nb * nb) return;
      for (const auto& e : blocks_[block]) {
        sgd_update_dispatch(model.p(e.u), model.q(e.i), k, e.r, lr, reg_p,
                            reg_q);
      }
      release(block);
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads_ - 1);
  for (std::uint32_t t = 1; t < threads_; ++t) pool.emplace_back(worker);
  worker();
  for (auto& t : pool) t.join();

  // With all blocks done, every thread's acquire() has returned; wake any
  // stragglers still waiting (none should be, by construction).
  cv.notify_all();
  decay_lr();
}

}  // namespace hcc::mf
