// Factor model storage: the feature matrices P and Q.
//
// P is m x k (one row of k latent features per user), Q is n x k (one row
// per item; note the paper writes Q as k x n — we store it item-major so an
// item's features are contiguous, which is what the SGD kernel touches).
// Both matrices live in 64-byte-aligned storage so the dispatched SIMD
// kernels (src/simd/) get cache-line-aligned rows whenever k % 16 == 0.
#pragma once

#include <cstdint>
#include <span>

#include "data/rating_matrix.hpp"
#include "util/aligned.hpp"
#include "util/rng.hpp"

namespace hcc::mf {

/// The trainable state of an MF problem.
class FactorModel {
 public:
  FactorModel() = default;

  /// Allocates zeroed P (users x k) and Q (items x k).
  FactorModel(std::uint32_t users, std::uint32_t items, std::uint32_t k);

  /// Random init: uniform in [0, sqrt(mean_rating / k)) — the standard MF
  /// init that makes initial predictions land near the rating scale's mean.
  void init_random(util::Rng& rng, float mean_rating);

  std::uint32_t users() const noexcept { return users_; }
  std::uint32_t items() const noexcept { return items_; }
  std::uint32_t k() const noexcept { return k_; }

  /// Mutable feature row of user u (span of k floats).
  float* p(std::uint32_t u) noexcept { return &p_[std::size_t(u) * k_]; }
  const float* p(std::uint32_t u) const noexcept { return &p_[std::size_t(u) * k_]; }

  /// Mutable feature row of item i (span of k floats).
  float* q(std::uint32_t i) noexcept { return &q_[std::size_t(i) * k_]; }
  const float* q(std::uint32_t i) const noexcept { return &q_[std::size_t(i) * k_]; }

  /// Whole-matrix views; the COMM module transmits these buffers.
  std::span<float> p_data() noexcept { return p_; }
  std::span<const float> p_data() const noexcept { return p_; }
  std::span<float> q_data() noexcept { return q_; }
  std::span<const float> q_data() const noexcept { return q_; }

  /// Predicted rating for cell (u, i): dot(P_u, Q_i).
  float predict(std::uint32_t u, std::uint32_t i) const noexcept;

 private:
  std::uint32_t users_ = 0;
  std::uint32_t items_ = 0;
  std::uint32_t k_ = 0;
  util::AlignedFloats p_;
  util::AlignedFloats q_;
};

/// Hyper-parameters of one SGD-based MF training run.
struct SgdConfig {
  std::uint32_t k = 128;       ///< latent dimension (paper uses k=128)
  float learn_rate = 0.005f;   ///< gamma
  float reg_p = 0.01f;         ///< lambda_1 (L2 on P)
  float reg_q = 0.01f;         ///< lambda_2 (L2 on Q)
  std::uint32_t epochs = 20;
  float lr_decay = 1.0f;       ///< per-epoch multiplicative decay
  std::uint64_t seed = 1234;

  /// Convenience: copies the dataset's published hyper-parameters.
  static SgdConfig for_dataset(float reg, float lr, std::uint32_t k = 128) {
    SgdConfig c;
    c.k = k;
    c.learn_rate = lr;
    c.reg_p = c.reg_q = reg;
    return c;
  }
};

/// One SGD step on a single observed rating (the formula in Figure 1):
///   err = r - <p, q>
///   p  += lr * (err * q - reg_p * p)
///   q  += lr * (err * p_old - reg_q * q)
/// Returns the pre-update error (callers accumulate it for training RMSE).
///
/// The loop is written over a compile-time-unknown k but with restrict-like
/// locals so it auto-vectorizes; this is the hot path of the whole library.
inline float sgd_update(float* p, float* q, std::uint32_t k, float r,
                        float lr, float reg_p, float reg_q) noexcept {
  float dot = 0.0f;
  for (std::uint32_t f = 0; f < k; ++f) dot += p[f] * q[f];
  const float err = r - dot;
  for (std::uint32_t f = 0; f < k; ++f) {
    const float pf = p[f];
    const float qf = q[f];
    p[f] = pf + lr * (err * qf - reg_p * pf);
    q[f] = qf + lr * (err * pf - reg_q * qf);
  }
  return err;
}

/// The factor-update half of sgd_update with a caller-supplied error —
/// used by models whose prediction adds terms beyond <p, q> (see
/// mf/biased.hpp), which must fold those terms into `err` themselves.
inline void sgd_update_with_error(float* p, float* q, std::uint32_t k,
                                  float err, float lr, float reg_p,
                                  float reg_q) noexcept {
  for (std::uint32_t f = 0; f < k; ++f) {
    const float pf = p[f];
    const float qf = q[f];
    p[f] = pf + lr * (err * qf - reg_p * pf);
    q[f] = qf + lr * (err * pf - reg_q * qf);
  }
}

}  // namespace hcc::mf
