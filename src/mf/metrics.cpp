#include "mf/metrics.hpp"

#include <atomic>
#include <cmath>
#include <vector>

namespace hcc::mf {

double rmse(const FactorModel& model, const data::RatingMatrix& ratings) {
  if (ratings.nnz() == 0) return 0.0;
  double sq = 0.0;
  for (const auto& e : ratings.entries()) {
    const double err = static_cast<double>(e.r) - model.predict(e.u, e.i);
    sq += err * err;
  }
  return std::sqrt(sq / static_cast<double>(ratings.nnz()));
}

double rmse(const FactorModel& model, const data::RatingMatrix& ratings,
            util::ThreadPool& pool) {
  if (ratings.nnz() == 0) return 0.0;
  const auto entries = ratings.entries();
  std::mutex merge;
  double sq = 0.0;
  pool.parallel_for(0, entries.size(), [&](std::size_t lo, std::size_t hi) {
    double local = 0.0;
    for (std::size_t idx = lo; idx < hi; ++idx) {
      const auto& e = entries[idx];
      const double err = static_cast<double>(e.r) - model.predict(e.u, e.i);
      local += err * err;
    }
    std::lock_guard guard(merge);
    sq += local;
  });
  return std::sqrt(sq / static_cast<double>(ratings.nnz()));
}

double objective(const FactorModel& model, const data::RatingMatrix& ratings,
                 float reg_p, float reg_q) {
  double loss = 0.0;
  for (const auto& e : ratings.entries()) {
    const double err = static_cast<double>(e.r) - model.predict(e.u, e.i);
    loss += err * err;
  }
  double p_norm = 0.0;
  for (float v : model.p_data()) p_norm += static_cast<double>(v) * v;
  double q_norm = 0.0;
  for (float v : model.q_data()) q_norm += static_cast<double>(v) * v;
  return loss + reg_p * p_norm + reg_q * q_norm;
}

}  // namespace hcc::mf
