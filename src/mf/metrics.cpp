#include "mf/metrics.hpp"

#include <atomic>
#include <cmath>
#include <vector>

#include "simd/dispatch.hpp"

namespace hcc::mf {

double rmse(const FactorModel& model, const data::RatingMatrix& ratings) {
  if (ratings.nnz() == 0) return 0.0;
  double sq = 0.0;
  for (const auto& e : ratings.entries()) {
    const double err = static_cast<double>(e.r) - model.predict(e.u, e.i);
    sq += err * err;
  }
  return std::sqrt(sq / static_cast<double>(ratings.nnz()));
}

double rmse(const FactorModel& model, const data::RatingMatrix& ratings,
            util::ThreadPool& pool) {
  if (ratings.nnz() == 0) return 0.0;
  const auto entries = ratings.entries();
  std::mutex merge;
  double sq = 0.0;
  pool.parallel_for(0, entries.size(), [&](std::size_t lo, std::size_t hi) {
    double local = 0.0;
    for (std::size_t idx = lo; idx < hi; ++idx) {
      const auto& e = entries[idx];
      const double err = static_cast<double>(e.r) - model.predict(e.u, e.i);
      local += err * err;
    }
    std::lock_guard guard(merge);
    sq += local;
  });
  return std::sqrt(sq / static_cast<double>(ratings.nnz()));
}

double objective(const FactorModel& model, const data::RatingMatrix& ratings,
                 float reg_p, float reg_q) {
  double loss = 0.0;
  for (const auto& e : ratings.entries()) {
    const double err = static_cast<double>(e.r) - model.predict(e.u, e.i);
    loss += err * err;
  }
  const auto& kernels = simd::kernels();
  const double p_norm =
      kernels.sum_squares(model.p_data().data(), model.p_data().size());
  const double q_norm =
      kernels.sum_squares(model.q_data().data(), model.q_data().size());
  return loss + reg_p * p_norm + reg_q * q_norm;
}

}  // namespace hcc::mf
