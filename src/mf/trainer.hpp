// Trainer interface and the baseline trainers the paper compares against.
//
// - SerialSgd: textbook single-thread SGD (reference semantics).
// - HogwildTrainer (hogwild.hpp): lock-free asynchronous threads, the
//   theoretical basis (Niu et al. 2011) the paper cites for running SGD-based
//   MF in parallel at all.
// - FpsgdTrainer (fpsgd.hpp): the paper's multi-core CPU baseline — block
//   grid plus a free-block scheduler (Chin et al. 2015), including the
//   paper's vectorized-kernel modification.
// - BatchedTrainer (batched.hpp): the paper's GPU baseline schedule —
//   CuMF_SGD-style batched processing with entries block-sorted by row
//   (the paper's modification iii for cache hit rate).
#pragma once

#include <memory>
#include <string>

#include "data/rating_matrix.hpp"
#include "mf/model.hpp"

namespace hcc::mf {

/// Abstract epoch-at-a-time trainer.  Stateless across epochs except for the
/// learning-rate schedule, so callers can interleave evaluation.
class Trainer {
 public:
  virtual ~Trainer() = default;

  /// Runs one pass over `ratings`, updating `model` in place.
  virtual void train_epoch(FactorModel& model,
                           const data::RatingMatrix& ratings) = 0;

  /// Human-readable trainer name for reports.
  virtual std::string name() const = 0;

  /// Current learning rate (after any decay applied so far).
  float learn_rate() const noexcept { return lr_; }

 protected:
  explicit Trainer(const SgdConfig& config)
      : config_(config), lr_(config.learn_rate) {}

  /// Applies per-epoch decay; trainers call this at the end of train_epoch.
  void decay_lr() noexcept { lr_ *= config_.lr_decay; }

  SgdConfig config_;
  float lr_;
};

/// Single-threaded SGD in the entry array's order.
class SerialSgd final : public Trainer {
 public:
  explicit SerialSgd(const SgdConfig& config) : Trainer(config) {}

  void train_epoch(FactorModel& model,
                   const data::RatingMatrix& ratings) override;

  std::string name() const override { return "serial-sgd"; }
};

/// Trains `epochs` passes and returns the per-epoch test RMSE trace.
/// Convenience used by tests and the convergence benchmark.
std::vector<double> train_and_trace(Trainer& trainer, FactorModel& model,
                                    const data::RatingMatrix& train,
                                    const data::RatingMatrix& test,
                                    std::uint32_t epochs);

}  // namespace hcc::mf
