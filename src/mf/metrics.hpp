// Evaluation metrics for MF models.
#pragma once

#include "data/rating_matrix.hpp"
#include "mf/model.hpp"
#include "util/thread_pool.hpp"

namespace hcc::mf {

/// Root-mean-square error of the model's predictions over `ratings`
/// (the paper's convergence metric in Figure 7).
double rmse(const FactorModel& model, const data::RatingMatrix& ratings);

/// Parallel RMSE using a pool; identical result, used on larger test sets.
double rmse(const FactorModel& model, const data::RatingMatrix& ratings,
            util::ThreadPool& pool);

/// The regularized objective of Figure 1:
///   sum (r - <p,q>)^2 + reg_p * |P|^2 + reg_q * |Q|^2.
double objective(const FactorModel& model, const data::RatingMatrix& ratings,
                 float reg_p, float reg_q);

}  // namespace hcc::mf
