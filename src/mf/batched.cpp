#include "mf/batched.hpp"

#include <algorithm>

#include "mf/kernels.hpp"

namespace hcc::mf {

void BatchedTrainer::train_epoch(FactorModel& model,
                                 const data::RatingMatrix& ratings) {
  if (cached_data_ != ratings.entries().data() ||
      cached_nnz_ != ratings.nnz()) {
    const auto entries = ratings.entries();
    const std::size_t per_batch =
        (entries.size() + batches_ - 1) / batches_;
    sorted_batches_.clear();
    for (std::size_t lo = 0; lo < entries.size(); lo += per_batch) {
      const std::size_t hi = std::min(entries.size(), lo + per_batch);
      std::vector<data::Rating> batch(entries.begin() + lo,
                                      entries.begin() + hi);
      std::sort(batch.begin(), batch.end(),
                [](const data::Rating& a, const data::Rating& b) {
                  return a.u != b.u ? a.u < b.u : a.i < b.i;
                });
      sorted_batches_.push_back(std::move(batch));
    }
    cached_data_ = entries.data();
    cached_nnz_ = entries.size();
  }

  const std::uint32_t k = model.k();
  const float lr = lr_;
  const float reg_p = config_.reg_p;
  const float reg_q = config_.reg_q;
  for (const auto& batch : sorted_batches_) {
    // One "kernel launch": pool threads take slices Hogwild-style.
    pool_.parallel_for(0, batch.size(), [&](std::size_t lo, std::size_t hi) {
      for (std::size_t idx = lo; idx < hi; ++idx) {
        const auto& e = batch[idx];
        sgd_update_dispatch(model.p(e.u), model.q(e.i), k, e.r, lr, reg_p,
                            reg_q);
      }
    });
  }
  decay_lr();
}

}  // namespace hcc::mf
