#include "mf/nomad.hpp"

#include <algorithm>
#include <atomic>
#include <deque>
#include <mutex>
#include <thread>

#include "mf/kernels.hpp"

namespace hcc::mf {

NomadTrainer::NomadTrainer(const SgdConfig& config, std::uint32_t workers)
    : Trainer(config), workers_(std::max(1u, workers)) {}

void NomadTrainer::build_index(const data::RatingMatrix& ratings) {
  entries_of_.assign(workers_, {});
  for (auto& per_worker : entries_of_) per_worker.resize(ratings.cols());
  for (const auto& e : ratings.entries()) {
    const std::uint32_t w = static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(e.u) * workers_) /
        std::max(1u, ratings.rows()));
    entries_of_[w][e.i].push_back(e);
  }
  cached_data_ = ratings.entries().data();
  cached_nnz_ = ratings.nnz();
}

void NomadTrainer::train_epoch(FactorModel& model,
                               const data::RatingMatrix& ratings) {
  if (cached_data_ != ratings.entries().data() ||
      cached_nnz_ != ratings.nnz()) {
    build_index(ratings);
  }
  const std::uint32_t p = workers_;
  const std::uint32_t k = model.k();
  const float lr = lr_;
  const float reg_p = config_.reg_p;
  const float reg_q = config_.reg_q;

  // A token = (item, hops left).  Item i starts at worker i mod p (the
  // diagonal initial assignment the paper describes) and visits every
  // worker once per epoch.
  struct Token {
    std::uint32_t item;
    std::uint32_t hops_left;
  };
  struct Queue {
    std::deque<Token> tokens;
    std::mutex mutex;
  };
  std::vector<Queue> queues(p);
  std::atomic<std::uint64_t> live_tokens{0};
  std::atomic<std::uint64_t> messages{0};
  for (std::uint32_t item = 0; item < ratings.cols(); ++item) {
    queues[item % p].tokens.push_back(Token{item, p});
    ++live_tokens;
  }

  auto worker_loop = [&](std::uint32_t w) {
    while (live_tokens.load(std::memory_order_acquire) > 0) {
      Token token{};
      bool have_token = false;
      {
        std::lock_guard lock(queues[w].mutex);
        if (!queues[w].tokens.empty()) {
          token = queues[w].tokens.front();
          queues[w].tokens.pop_front();
          have_token = true;
        }
      }
      if (!have_token) {
        // Nothing owned right now; let in-flight tokens arrive.
        std::this_thread::yield();
        continue;
      }
      // Exclusive Q-row access by ownership: only this worker may touch
      // q(item) while holding its token.  P rows are block-exclusive.
      for (const auto& e : entries_of_[w][token.item]) {
        sgd_update_dispatch(model.p(e.u), model.q(e.i), k, e.r, lr, reg_p,
                            reg_q);
      }
      if (--token.hops_left == 0) {
        live_tokens.fetch_sub(1, std::memory_order_release);
      } else {
        const std::uint32_t next = (w + 1) % p;
        std::lock_guard lock(queues[next].mutex);
        queues[next].tokens.push_back(token);
        messages.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(p > 0 ? p - 1 : 0);
  for (std::uint32_t w = 1; w < p; ++w) threads.emplace_back(worker_loop, w);
  worker_loop(0);
  for (auto& t : threads) t.join();

  messages_ = messages.load();
  decay_lr();
}

}  // namespace hcc::mf
