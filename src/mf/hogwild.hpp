// Hogwild! asynchronous SGD (Niu, Recht, Ré, Wright 2011).
//
// Threads update P and Q concurrently with no locks at all.  Under sparse
// data the collision probability is low and convergence is preserved — the
// property HCC-MF leans on both inside each worker and for its asynchronous
// multi-stream pipelines (Section 4.2's "lost updates" discussion).
#pragma once

#include "mf/trainer.hpp"
#include "util/thread_pool.hpp"

namespace hcc::mf {

/// Lock-free parallel SGD over a shared model.
class HogwildTrainer final : public Trainer {
 public:
  /// `pool` supplies the worker threads; one chunk of the (pre-shuffled)
  /// entry array goes to each.
  HogwildTrainer(const SgdConfig& config, util::ThreadPool& pool)
      : Trainer(config), pool_(pool) {}

  void train_epoch(FactorModel& model,
                   const data::RatingMatrix& ratings) override;

  std::string name() const override { return "hogwild"; }

 private:
  util::ThreadPool& pool_;
};

}  // namespace hcc::mf
