// NOMAD-style non-locking asynchronous SGD (Yun, Yu, Hsieh, Vishwanathan,
// Dhillon 2013) — the second distributed baseline of the paper's Related
// Work.  Workers own disjoint row blocks permanently; *item columns*
// circulate between workers as tokens.  The worker holding an item's token
// is the only one allowed to update that item's Q row, so no locks guard
// the factors — the mutual exclusion is carried entirely by token
// ownership (which is exactly the "completely supported by the
// transmission of parameter messages" property, and the communication
// volume, that the paper criticizes).
//
// One train_epoch() circulates every item token through all workers once,
// so every rating is applied exactly once per epoch.
#pragma once

#include <cstdint>
#include <vector>

#include "mf/trainer.hpp"

namespace hcc::mf {

/// Token-passing asynchronous SGD.
class NomadTrainer final : public Trainer {
 public:
  NomadTrainer(const SgdConfig& config, std::uint32_t workers);

  void train_epoch(FactorModel& model,
                   const data::RatingMatrix& ratings) override;

  std::string name() const override { return "nomad"; }

  std::uint32_t workers() const noexcept { return workers_; }

  /// Messages (token hand-offs) of the last epoch — the communication
  /// volume the paper's Related Work calls "huge".
  std::uint64_t last_epoch_messages() const noexcept { return messages_; }

 private:
  void build_index(const data::RatingMatrix& ratings);

  std::uint32_t workers_;
  std::uint64_t messages_ = 0;

  const void* cached_data_ = nullptr;
  std::size_t cached_nnz_ = 0;
  // entries_of_[worker][item] -> this worker's ratings for that item.
  std::vector<std::vector<std::vector<data::Rating>>> entries_of_;
};

}  // namespace hcc::mf
