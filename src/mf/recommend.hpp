// Recommendation on top of a trained factor model.
//
// MF's end purpose (Figure 1): predict the missing cells of R and recommend
// the items with the highest predicted ratings.  This module provides the
// top-N query plus the ranking metrics used to sanity-check a trained
// model (hit rate and mean average error over held-out ratings).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "data/rating_matrix.hpp"
#include "mf/model.hpp"

namespace hcc::mf {

/// One recommended item with its predicted rating.
struct ScoredItem {
  std::uint32_t item = 0;
  float score = 0.0f;
  friend bool operator==(const ScoredItem&, const ScoredItem&) = default;
};

/// Per-user view of which items are known (rated in the training set) —
/// build once, query many users.
class SeenIndex {
 public:
  explicit SeenIndex(const data::RatingMatrix& train);

  /// True if `user` rated `item` in the training data.
  bool seen(std::uint32_t user, std::uint32_t item) const;

  /// The sorted item ids `user` rated; empty for out-of-range users (the
  /// serving path queries fold-in users beyond the training rows).
  std::span<const std::uint32_t> items(std::uint32_t user) const {
    if (user >= items_.size()) return {};
    return items_[user];
  }

  /// Number of training ratings of `user`.
  std::size_t count(std::uint32_t user) const {
    return items_[user].size();
  }

 private:
  std::vector<std::vector<std::uint32_t>> items_;  // sorted per user
};

/// The `n` unseen items with the highest predicted rating for `user`,
/// best first.  O(items * k + items log n).  Scans Q in blocks through the
/// dispatched `simd::score_block` kernel with the seen set fused in as a
/// skip bitmask; only block maxima that beat the current n-th best touch
/// the heap.
std::vector<ScoredItem> top_n(const FactorModel& model, const SeenIndex& seen,
                              std::uint32_t user, std::size_t n);

/// Mean absolute error of the model over `ratings`.
double mae(const FactorModel& model, const data::RatingMatrix& ratings);

/// Leave-one-out style hit rate: for each test rating >= `relevant_min`,
/// count a hit when the item appears in the user's top-`n` recommendations
/// (computed against `train` as the seen set).  Returns hits / trials, or
/// 0 when there are no qualifying test ratings.
double hit_rate_at_n(const FactorModel& model,
                     const data::RatingMatrix& train,
                     const data::RatingMatrix& test, std::size_t n,
                     float relevant_min);

}  // namespace hcc::mf
