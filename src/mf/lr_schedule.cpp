#include "mf/lr_schedule.hpp"

#include <cmath>
#include <stdexcept>

namespace hcc::mf {

float ExponentialDecayLr::rate(std::uint32_t epoch, double) {
  return lr_ * std::pow(decay_, static_cast<float>(epoch));
}

float InverseTimeLr::rate(std::uint32_t epoch, double) {
  return lr_ / (1.0f + static_cast<float>(epoch) / tau_);
}

float BoldDriverLr::rate(std::uint32_t epoch, double last_objective) {
  if (epoch == 0 || std::isnan(last_objective)) {
    has_prev_ = !std::isnan(last_objective);
    prev_objective_ = last_objective;
    return lr_;
  }
  if (has_prev_) {
    if (last_objective < prev_objective_) {
      lr_ *= grow_;
    } else {
      lr_ *= shrink_;
    }
  }
  prev_objective_ = last_objective;
  has_prev_ = true;
  return lr_;
}

std::unique_ptr<LrSchedule> make_lr_schedule(const std::string& name,
                                             float lr) {
  if (name == "constant") return std::make_unique<ConstantLr>(lr);
  if (name == "exponential") {
    return std::make_unique<ExponentialDecayLr>(lr, 0.95f);
  }
  if (name == "inverse-time") return std::make_unique<InverseTimeLr>(lr, 5.0f);
  if (name == "bold-driver") return std::make_unique<BoldDriverLr>(lr);
  throw std::invalid_argument("unknown lr schedule: " + name);
}

}  // namespace hcc::mf
