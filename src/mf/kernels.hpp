// SGD update kernel variants.
//
// The paper's footnote 1 describes hand-vectorizing FPSGD's update kernel
// (SSE/AVX/AVX512F) for a 1.8-2.3x speedup.  sgd_update_dispatch delivers
// that through the runtime-dispatched SIMD backend (src/simd/): one
// cpuid-resolved kernel table (AVX2+FMA, AVX-512F, NEON, scalar fallback)
// whose kernels handle every rank k, remainder tails included.  All
// variants compute the same recurrence; floating-point results can differ
// only by reassociation (tests bound the divergence).
//
// The old k % 4 == 0 manually unrolled variants (dot4, sgd_update_x4) are
// benchmark baselines only and live in bench/legacy_kernels.hpp, where
// product code cannot reach their divisibility restriction by accident.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <span>

#include "mf/model.hpp"
#include "simd/dispatch.hpp"
#include "simd/prefetch.hpp"

namespace hcc::mf {

/// Divergence guard for the ASGD inner loop: true iff every value is
/// finite.  A single exploding sgd_update poisons its whole Q row within
/// one epoch, so a post-chunk scan is enough to catch runaway learning
/// rates before the next push spreads them.  The SIMD backend tests the
/// exponent bits as integers, which both vectorizes and stays correct under
/// -ffast-math-style flags (an `x * 0 == 0` probe would not: the compiler
/// may assume no NaN/Inf exist and fold the scan away).
inline bool all_finite(std::span<const float> values) noexcept {
  return simd::kernels().all_finite(values.data(), values.size());
}

/// Prefetch hint for an upcoming rating's factor rows: issued one update
/// ahead by the ASGD inner loop so the next P/Q rows arrive while the
/// current update's FMA chain drains.  A hint only — results, and the
/// kAsIs bit-identical contract, are unaffected.
inline void sgd_prefetch_rows(const float* p, const float* q,
                              std::uint32_t k) noexcept {
  simd::prefetch_row(p, k);
  simd::prefetch_row(q, k);
}

/// One SGD step through the runtime-dispatched SIMD backend.  Every k takes
/// the ISA fast path (vector body + scalar remainder tail); there is no
/// divisibility gate any more.
inline float sgd_update_dispatch(float* p, float* q, std::uint32_t k, float r,
                                 float lr, float reg_p,
                                 float reg_q) noexcept {
  return simd::kernels().sgd_update(p, q, k, r, lr, reg_p, reg_q);
}

/// Dispatched counterpart of sgd_update_with_error (see model.hpp): the
/// factor-update half with a caller-supplied error, for biased models.
inline void sgd_update_with_error_dispatch(float* p, float* q,
                                           std::uint32_t k, float err,
                                           float lr, float reg_p,
                                           float reg_q) noexcept {
  simd::kernels().sgd_update_with_error(p, q, k, err, lr, reg_p, reg_q);
}

}  // namespace hcc::mf
