// SGD update kernel variants.
//
// The paper's footnote 1 describes hand-vectorizing FPSGD's update kernel
// (SSE/AVX/AVX512F) for a 1.8-2.3x speedup.  sgd_update_dispatch delivers
// that through the runtime-dispatched SIMD backend (src/simd/): one
// cpuid-resolved kernel table (AVX2+FMA, AVX-512F, NEON, scalar fallback)
// whose kernels handle every rank k, remainder tails included.  The 4-wide
// manually unrolled variant remains as the portable auto-vectorization
// baseline the benchmarks compare against.  All variants compute the same
// recurrence; floating-point results can differ only by reassociation
// (tests bound the divergence).
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <span>

#include "mf/model.hpp"
#include "simd/dispatch.hpp"

namespace hcc::mf {

/// Divergence guard for the ASGD inner loop: true iff every value is
/// finite.  A single exploding sgd_update poisons its whole Q row within
/// one epoch, so a post-chunk scan is enough to catch runaway learning
/// rates before the next push spreads them.  The SIMD backend tests the
/// exponent bits as integers, which both vectorizes and stays correct under
/// -ffast-math-style flags (an `x * 0 == 0` probe would not: the compiler
/// may assume no NaN/Inf exist and fold the scan away).
inline bool all_finite(std::span<const float> values) noexcept {
  return simd::kernels().all_finite(values.data(), values.size());
}

/// Dot product, 4-wide unrolled (k % 4 == 0 required).
inline float dot4(const float* a, const float* b, std::uint32_t k) noexcept {
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  for (std::uint32_t f = 0; f < k; f += 4) {
    s0 += a[f + 0] * b[f + 0];
    s1 += a[f + 1] * b[f + 1];
    s2 += a[f + 2] * b[f + 2];
    s3 += a[f + 3] * b[f + 3];
  }
  return (s0 + s1) + (s2 + s3);
}

/// SGD update with 4-wide unrolled loops (k % 4 == 0 required).  Same
/// recurrence as sgd_update; the four independent accumulators let the
/// compiler emit packed FMA without a reduction dependency chain.
inline float sgd_update_x4(float* p, float* q, std::uint32_t k, float r,
                           float lr, float reg_p, float reg_q) noexcept {
  const float err = r - dot4(p, q, k);
  for (std::uint32_t f = 0; f < k; f += 4) {
    const float p0 = p[f + 0], p1 = p[f + 1], p2 = p[f + 2], p3 = p[f + 3];
    const float q0 = q[f + 0], q1 = q[f + 1], q2 = q[f + 2], q3 = q[f + 3];
    p[f + 0] = p0 + lr * (err * q0 - reg_p * p0);
    p[f + 1] = p1 + lr * (err * q1 - reg_p * p1);
    p[f + 2] = p2 + lr * (err * q2 - reg_p * p2);
    p[f + 3] = p3 + lr * (err * q3 - reg_p * p3);
    q[f + 0] = q0 + lr * (err * p0 - reg_q * q0);
    q[f + 1] = q1 + lr * (err * p1 - reg_q * q1);
    q[f + 2] = q2 + lr * (err * p2 - reg_q * q2);
    q[f + 3] = q3 + lr * (err * p3 - reg_q * q3);
  }
  return err;
}

/// One SGD step through the runtime-dispatched SIMD backend.  Every k takes
/// the ISA fast path (vector body + scalar remainder tail); there is no
/// divisibility gate any more.
inline float sgd_update_dispatch(float* p, float* q, std::uint32_t k, float r,
                                 float lr, float reg_p,
                                 float reg_q) noexcept {
  return simd::kernels().sgd_update(p, q, k, r, lr, reg_p, reg_q);
}

/// Dispatched counterpart of sgd_update_with_error (see model.hpp): the
/// factor-update half with a caller-supplied error, for biased models.
inline void sgd_update_with_error_dispatch(float* p, float* q,
                                           std::uint32_t k, float err,
                                           float lr, float reg_p,
                                           float reg_q) noexcept {
  simd::kernels().sgd_update_with_error(p, q, k, err, lr, reg_p, reg_q);
}

}  // namespace hcc::mf
