#include "mf/hogwild.hpp"

#include "mf/kernels.hpp"

namespace hcc::mf {

void HogwildTrainer::train_epoch(FactorModel& model,
                                 const data::RatingMatrix& ratings) {
  const auto entries = ratings.entries();
  const std::uint32_t k = model.k();
  const float lr = lr_;
  const float reg_p = config_.reg_p;
  const float reg_q = config_.reg_q;
  // Benign data race by design: concurrent updates to the same feature row
  // may lose increments, which Hogwild tolerates on sparse data.
  pool_.parallel_for(0, entries.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t idx = lo; idx < hi; ++idx) {
      const auto& e = entries[idx];
      sgd_update_dispatch(model.p(e.u), model.q(e.i), k, e.r, lr, reg_p, reg_q);
    }
  });
  decay_lr();
}

}  // namespace hcc::mf
