// FPSGD: fast parallel SGD for shared-memory MF (Chin et al., TIST 2015).
//
// The paper's multi-core CPU baseline.  The rating matrix is cut into a
// (t+1) x (t+1) grid of blocks for t threads; a scheduler hands each thread
// a "free" block — one whose row band and column band are not held by any
// other thread — so threads never touch the same P rows or Q rows and need
// no locks inside the SGD kernel.  One train_epoch() processes every block
// exactly once.
//
// The scheduler prefers, among free unprocessed blocks, the least-recently
// processed one, reproducing FPSGD's balanced block rotation.
#pragma once

#include <cstdint>
#include <vector>

#include "mf/trainer.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace hcc::mf {

/// Block-scheduled shared-memory parallel SGD.
class FpsgdTrainer final : public Trainer {
 public:
  /// `threads` compute threads (grid is (threads+1)^2 blocks).
  FpsgdTrainer(const SgdConfig& config, std::uint32_t threads);

  void train_epoch(FactorModel& model,
                   const data::RatingMatrix& ratings) override;

  std::string name() const override { return "fpsgd"; }

  std::uint32_t threads() const noexcept { return threads_; }
  std::uint32_t bands() const noexcept { return threads_ + 1; }

 private:
  void build_grid(const data::RatingMatrix& ratings);

  std::uint32_t threads_;
  util::Rng rng_;

  // Cached block partition; rebuilt when a different matrix is passed.
  const void* cached_data_ = nullptr;
  std::size_t cached_nnz_ = 0;
  std::vector<std::vector<data::Rating>> blocks_;  // bands x bands, row-major
  std::vector<std::uint32_t> row_band_of_;         // per matrix row
  std::vector<std::uint32_t> col_band_of_;         // per matrix column
};

}  // namespace hcc::mf
