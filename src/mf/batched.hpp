// CuMF_SGD-style batched SGD (Xie et al., HPDC 2017) — the paper's GPU
// baseline schedule, reproduced on host threads.
//
// CuMF_SGD launches kernels that let many warps grab consecutive slices of
// the entry array and update the shared model without locks; the paper's
// modification iii additionally block-sorts entries by row inside each batch
// to improve cache hit rate.  Functionally this is Hogwild with a batch-
// sequential outer loop (one batch = one kernel launch) and sorted locality
// inside batches — exactly what we implement, so the convergence behaviour
// (including occasional lost updates) matches the GPU schedule.
#pragma once

#include <cstdint>
#include <vector>

#include "mf/trainer.hpp"
#include "util/thread_pool.hpp"

namespace hcc::mf {

/// Batch-sequential lock-free SGD with in-batch row sorting.
class BatchedTrainer final : public Trainer {
 public:
  /// `batches` outer launches per epoch; `pool` plays the role of the GPU's
  /// thread blocks inside one launch.
  BatchedTrainer(const SgdConfig& config, util::ThreadPool& pool,
                 std::uint32_t batches = 8)
      : Trainer(config), pool_(pool), batches_(std::max(1u, batches)) {}

  void train_epoch(FactorModel& model,
                   const data::RatingMatrix& ratings) override;

  std::string name() const override { return "cumf-batched"; }

 private:
  util::ThreadPool& pool_;
  std::uint32_t batches_;

  // Cached row-sorted batch copies (the "block sorting by row" preprocess).
  const void* cached_data_ = nullptr;
  std::size_t cached_nnz_ = 0;
  std::vector<std::vector<data::Rating>> sorted_batches_;
};

}  // namespace hcc::mf
