// Loader for the MovieLens ratings.csv format (and close variants):
//   userId,movieId,rating,timestamp
// with an optional header line, 1-based sparse ids, fractional ratings.
// Real MovieLens ids are sparse (movieId up to ~131k with ~27k distinct),
// so the loader densifies both id spaces and returns the mappings.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/rating_matrix.hpp"

namespace hcc::data {

/// The densified dataset plus the original-id mappings.
struct MovieLensData {
  RatingMatrix ratings{0, 0};
  std::vector<std::uint64_t> user_ids;  ///< dense row -> original userId
  std::vector<std::uint64_t> item_ids;  ///< dense col -> original movieId
};

/// Parses a ratings.csv-style file.  Throws std::runtime_error on malformed
/// rows (bad field count, non-numeric ids/ratings).
MovieLensData load_movielens_csv(const std::string& path);

/// Writes a matrix back out in the same CSV format (timestamp written as 0;
/// ids mapped through the provided tables, or identity when empty).
bool save_movielens_csv(const RatingMatrix& ratings,
                        const std::vector<std::uint64_t>& user_ids,
                        const std::vector<std::uint64_t>& item_ids,
                        const std::string& path);

}  // namespace hcc::data
