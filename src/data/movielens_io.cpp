#include "data/movielens_io.hpp"

#include <charconv>
#include <cmath>
#include <fstream>
#include <stdexcept>
#include <unordered_map>

#include "data/io.hpp"

namespace hcc::data {

namespace {

/// Splits one CSV line on commas (MovieLens fields never contain commas).
std::vector<std::string_view> split_csv(std::string_view line) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = line.find(',', start);
    if (comma == std::string_view::npos) {
      fields.push_back(line.substr(start));
      break;
    }
    fields.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
  return fields;
}

std::uint64_t parse_u64(std::string_view field, const std::string& path,
                        std::size_t line) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), value);
  if (ec != std::errc() || ptr != field.data() + field.size()) {
    throw ParseError(path, line,
                     "bad integer field '" + std::string(field) + "'");
  }
  return value;
}

float parse_rating(std::string_view field, const std::string& path,
                   std::size_t line) {
  // std::from_chars for float is fine on GCC 12; keep strtof fallback-free.
  float value = 0.0f;
  const auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), value);
  if (ec != std::errc() || ptr != field.data() + field.size()) {
    throw ParseError(path, line,
                     "bad rating field '" + std::string(field) + "'");
  }
  if (!std::isfinite(value)) {
    throw ParseError(path, line, "non-finite rating");
  }
  return value;
}

}  // namespace

MovieLensData load_movielens_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ParseError(path, 0, "cannot open");

  MovieLensData out;
  std::unordered_map<std::uint64_t, std::uint32_t> user_map;
  std::unordered_map<std::uint64_t, std::uint32_t> item_map;
  std::vector<Rating> entries;

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    // Header: "userId,movieId,rating,timestamp" (any casing).
    if (line_no == 1 && (line[0] == 'u' || line[0] == 'U')) continue;
    const auto fields = split_csv(line);
    if (fields.size() < 3) {
      throw ParseError(path, line_no, "expected at least 3 CSV fields");
    }
    const std::uint64_t user = parse_u64(fields[0], path, line_no);
    const std::uint64_t item = parse_u64(fields[1], path, line_no);
    const float rating = parse_rating(fields[2], path, line_no);

    const auto [uit, u_new] = user_map.try_emplace(
        user, static_cast<std::uint32_t>(out.user_ids.size()));
    if (u_new) out.user_ids.push_back(user);
    const auto [iit, i_new] = item_map.try_emplace(
        item, static_cast<std::uint32_t>(out.item_ids.size()));
    if (i_new) out.item_ids.push_back(item);
    entries.push_back(Rating{uit->second, iit->second, rating});
  }
  out.ratings = RatingMatrix(static_cast<std::uint32_t>(out.user_ids.size()),
                             static_cast<std::uint32_t>(out.item_ids.size()),
                             std::move(entries));
  return out;
}

bool save_movielens_csv(const RatingMatrix& ratings,
                        const std::vector<std::uint64_t>& user_ids,
                        const std::vector<std::uint64_t>& item_ids,
                        const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << "userId,movieId,rating,timestamp\n";
  for (const auto& e : ratings.entries()) {
    const std::uint64_t user =
        e.u < user_ids.size() ? user_ids[e.u] : e.u;
    const std::uint64_t item =
        e.i < item_ids.size() ? item_ids[e.i] : e.i;
    out << user << ',' << item << ',' << e.r << ",0\n";
  }
  return static_cast<bool>(out);
}

}  // namespace hcc::data
