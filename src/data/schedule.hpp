// Cache-aware rating schedules (visit-order preprocessing).
//
// The paper's compute term is memory-bandwidth bound — Eq. 2 charges every
// rating 16k+4 bytes — so the *effective* B_i a worker sees is set by how
// often the P/Q rows it touches are still cache-resident.  Worker slices
// arrive sorted by row (see data/grid.cpp): P streams sequentially, but each
// user row sweeps the whole item range, so with n*k*4 bytes of Q beyond L2
// every Q row is evicted between consecutive touches.  CuMF_SGD and FPSGD
// both schedule ratings in cache-sized 2-D blocks for exactly this reason.
//
// A RatingScheduler reorders a worker's slice once per epoch:
//  - kAsIs      guaranteed no-op — the legacy (load/file) order, default,
//               bit-identical to the pre-scheduler trajectory;
//  - kShuffled  seeded per-epoch Fisher–Yates permutation (classic SGD
//               randomization, the baseline the tiled order must not lose
//               convergence against);
//  - kTiled     2-D tiles over (local-row x item) ranges sized to a cache
//               budget, visited block-major in a per-epoch seeded tile
//               order; within a tile the original relative order is kept
//               (stable), or a Z-curve with ScheduleOptions::zorder.
//
// SGD's visit order is already arbitrary (the generator shuffles, FPSGD
// blocks, HogWild races), so any permutation preserves convergence in
// distribution; tests bound the RMSE delta across policies.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "data/rating_matrix.hpp"

namespace hcc::data {

/// Visit-order policy for a worker's rating slice.
enum class SchedulePolicy : std::uint8_t {
  kAsIs = 0,      ///< legacy order, bit-identical no-op (default)
  kShuffled = 1,  ///< seeded per-epoch random permutation
  kTiled = 2,     ///< cache-sized 2-D blocks, seeded block-major order
};

/// "asis" / "shuffled" / "tiled" (CLI + logging + bench JSON).
const char* schedule_name(SchedulePolicy policy);

/// Parses "asis" / "shuffled" / "tiled"; throws std::invalid_argument.
SchedulePolicy parse_schedule(const std::string& name);

/// Everything configurable about a schedule.
struct ScheduleOptions {
  SchedulePolicy policy = SchedulePolicy::kAsIs;
  /// Cache budget per tile in KiB (kTiled): the tile's Q working set (the
  /// reused side) is kept within this many KiB.  Sized for a private L2 by
  /// default; 0 is invalid under kTiled (HccMfConfig::validate rejects it).
  std::uint32_t tile_kb = 2048;
  /// Z-curve traversal within each tile (kTiled): interleaves row/item
  /// bits so both the P and Q footprints grow locally instead of sweeping
  /// one dimension first.
  bool zorder = false;
  /// Base seed; epoch e reorders with seed ^ mix(e) so every epoch visits
  /// in a fresh (but reproducible) order.
  std::uint64_t seed = 0x5eedc0deULL;
};

/// What one prepare() pass did (fed into the sched.* metrics).
struct ScheduleStats {
  std::uint32_t tiles = 1;      ///< occupied tiles (1 for kAsIs/kShuffled)
  std::uint32_t row_span = 0;   ///< P rows per tile (kTiled)
  std::uint32_t col_span = 0;   ///< Q rows (items) per tile (kTiled)
  double reorder_ms = 0.0;      ///< wall time of the reorder pass
  /// Entry offsets where one occupied tile ends and the next begins, in the
  /// epoch's visit order (ascending, exclusive of 0 and nnz; empty for
  /// kAsIs/kShuffled).  The work-stealing executor cuts chunks only on
  /// these boundaries so a stolen chunk is a whole number of tiles.
  std::vector<std::uint32_t> tile_offsets;
};

/// Reorders a rating slice into one epoch's visit order.  Stateless apart
/// from the options: the per-epoch permutation derives from (seed, epoch),
/// so recovery re-runs and multi-worker runs stay reproducible.
class RatingScheduler {
 public:
  RatingScheduler() = default;

  /// `k` is the factor rank — it sets the bytes-per-row term of the tile
  /// working set (col_span * k * 4 bytes <= tile_kb KiB).
  RatingScheduler(const ScheduleOptions& options, std::uint32_t k);

  const ScheduleOptions& options() const noexcept { return options_; }

  /// Reorders `slice`'s entries in place for epoch `epoch` and returns
  /// what happened.  kAsIs never touches the entries (bit-identical).
  ScheduleStats prepare(RatingMatrix& slice, std::uint32_t epoch) const;

  /// Tile geometry for a cache budget: (rows_per_tile, items_per_tile).
  /// The byte budget buys the Q (item) side — the one a tile reuses — and
  /// rows_per_tile rides a fixed 32x aspect over it, since P streams
  /// sequentially within a tile and needs no residency.  Both spans are at
  /// least 1 and at most 65536 (Z-order key width).
  static std::pair<std::uint32_t, std::uint32_t> tile_spans(
      std::uint32_t tile_kb, std::uint32_t k);

 private:
  ScheduleStats prepare_tiled(RatingMatrix& slice, std::uint32_t epoch) const;

  ScheduleOptions options_;
  std::uint32_t k_ = 0;
};

}  // namespace hcc::data
