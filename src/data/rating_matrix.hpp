// Sparse rating matrix storage.
//
// The rating matrix R of an MF problem is stored in coordinate (COO) form —
// the natural format for SGD, which visits ratings one by one — with helpers
// to shuffle (SGD wants random visit order), sort by row (the paper's
// cache-hit-rate modification to CuMF_SGD's grid problem), and convert to CSR
// (used by the FPSGD block scheduler and by per-row accounting).
#pragma once

#include <cstdint>
#include <cstddef>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace hcc::data {

/// One observed rating: user row `u`, item column `i`, value `r`.
struct Rating {
  std::uint32_t u = 0;
  std::uint32_t i = 0;
  float r = 0.0f;
  friend bool operator==(const Rating&, const Rating&) = default;
};

/// COO sparse matrix of observed ratings with known dimensions.
class RatingMatrix {
 public:
  RatingMatrix() = default;

  /// Creates an empty matrix of logical size rows x cols.
  RatingMatrix(std::uint32_t rows, std::uint32_t cols)
      : rows_(rows), cols_(cols) {}

  /// Creates a matrix from existing entries (entries may be unsorted).
  RatingMatrix(std::uint32_t rows, std::uint32_t cols,
               std::vector<Rating> entries);

  std::uint32_t rows() const noexcept { return rows_; }
  std::uint32_t cols() const noexcept { return cols_; }
  std::size_t nnz() const noexcept { return entries_.size(); }

  /// Fraction of cells observed: nnz / (rows * cols).
  double density() const noexcept;

  std::span<const Rating> entries() const noexcept { return entries_; }
  std::span<Rating> mutable_entries() noexcept { return entries_; }

  /// Appends one rating (bounds-checked with assert in debug builds).
  void add(std::uint32_t u, std::uint32_t i, float r);
  void reserve(std::size_t n) { entries_.reserve(n); }

  /// Bulk append: one reserve + one contiguous insert (bounds-checked with
  /// assert in debug builds) — the degraded-mode repartition path absorbs
  /// whole entry batches this way instead of O(entries) add() calls.
  void append(std::span<const Rating> entries);

  /// Randomizes visit order (step 1 of the paper's preprocessing).
  void shuffle(util::Rng& rng);

  /// Reorders entries by an arbitrary permutation of [0, nnz):
  /// new_entries[j] = old_entries[perm[j]].  The rating scheduler
  /// (data/schedule.hpp) visits through this; `perm` must be a valid
  /// permutation (checked with asserts in debug builds).
  void permute(std::span<const std::uint32_t> perm);

  /// Stable-sorts entries by row then column; improves cache hit rate for
  /// row-major factor access (the paper's CuMF_SGD modification iii).
  void sort_by_row();

  /// Stable-sorts entries by column then row (used under column grids).
  void sort_by_col();

  /// Per-row nonzero counts; used by the grid partitioner to split rows so
  /// each worker receives its target *fraction of ratings*, not of rows.
  std::vector<std::size_t> row_counts() const;
  std::vector<std::size_t> col_counts() const;

  /// Returns the transposed matrix (swaps the roles of users and items);
  /// the paper switches to column grids / "Transmitting P only" this way.
  RatingMatrix transposed() const;

  /// Extracts the sub-matrix containing rows [row_begin, row_end).  Entry
  /// coordinates keep their global row ids, as HCC-MF workers index into the
  /// shared global P.  Requires entries sorted by row.
  RatingMatrix slice_rows(std::uint32_t row_begin, std::uint32_t row_end) const;

 private:
  std::uint32_t rows_ = 0;
  std::uint32_t cols_ = 0;
  std::vector<Rating> entries_;
};

/// Compressed-sparse-row index over a RatingMatrix (values stay in the COO
/// entry array; this holds offsets).  Build once after sort_by_row().
class CsrIndex {
 public:
  CsrIndex() = default;

  /// Builds offsets; `matrix` must already be sorted by row.
  explicit CsrIndex(const RatingMatrix& matrix);

  /// Half-open entry range [begin(r), end(r)) of row r in the entry array.
  std::size_t begin(std::uint32_t row) const { return offsets_[row]; }
  std::size_t end(std::uint32_t row) const { return offsets_[row + 1]; }

  std::uint32_t rows() const {
    return static_cast<std::uint32_t>(offsets_.size() - 1);
  }

 private:
  std::vector<std::size_t> offsets_;
};

}  // namespace hcc::data
