#include "data/schedule.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/clock.hpp"
#include "util/rng.hpp"

namespace hcc::data {

namespace {

/// Spreads consecutive epoch numbers across the seed space so epoch e and
/// e+1 produce unrelated permutations.
std::uint64_t epoch_seed(std::uint64_t base, std::uint32_t epoch) {
  std::uint64_t state = base ^ (0x9e3779b97f4a7c15ULL * (epoch + 1));
  return util::splitmix64(state);
}

/// Interleaves the low 16 bits of x (even positions) and y (odd positions):
/// the Z-curve key over a (row offset, item offset) pair within a tile.
std::uint64_t morton_key(std::uint32_t x, std::uint32_t y) {
  auto spread = [](std::uint64_t v) {
    v &= 0xffffULL;
    v = (v | (v << 8)) & 0x00ff00ffULL;
    v = (v | (v << 4)) & 0x0f0f0f0fULL;
    v = (v | (v << 2)) & 0x33333333ULL;
    v = (v | (v << 1)) & 0x55555555ULL;
    return v;
  };
  return spread(x) | (spread(y) << 1);
}

}  // namespace

const char* schedule_name(SchedulePolicy policy) {
  switch (policy) {
    case SchedulePolicy::kShuffled:
      return "shuffled";
    case SchedulePolicy::kTiled:
      return "tiled";
    case SchedulePolicy::kAsIs:
    default:
      return "asis";
  }
}

SchedulePolicy parse_schedule(const std::string& name) {
  if (name == "asis") return SchedulePolicy::kAsIs;
  if (name == "shuffled") return SchedulePolicy::kShuffled;
  if (name == "tiled") return SchedulePolicy::kTiled;
  throw std::invalid_argument("unknown schedule: \"" + name +
                              "\" (expected asis|shuffled|tiled)");
}

RatingScheduler::RatingScheduler(const ScheduleOptions& options,
                                 std::uint32_t k)
    : options_(options), k_(std::max(1u, k)) {}

std::pair<std::uint32_t, std::uint32_t> RatingScheduler::tile_spans(
    std::uint32_t tile_kb, std::uint32_t k) {
  // The budget buys the *reused* side: Q.  Within a tile the stable sort
  // keeps entries in their original row-major order, so P streams
  // sequentially (hardware-prefetched) and does not need to be resident —
  // only the col_span Q rows do, and each is touched about
  // row_span * density times while it is.  At rating-matrix densities
  // (1e-3 and below) a square tile would touch each Q row roughly once,
  // which is no reuse at all; a tall tile is what turns the budget into
  // cache hits, so row_span gets a fixed 32x aspect over col_span (both
  // capped at the 16-bit Z-order key width).
  const std::uint64_t row_bytes = std::uint64_t(std::max(1u, k)) * 4;
  const std::uint64_t budget = std::uint64_t(tile_kb) * 1024;
  const std::uint64_t col_span =
      std::clamp<std::uint64_t>(budget / row_bytes, 1, 65536);
  const std::uint64_t row_span = std::min<std::uint64_t>(32 * col_span, 65536);
  return {static_cast<std::uint32_t>(row_span),
          static_cast<std::uint32_t>(col_span)};
}

ScheduleStats RatingScheduler::prepare(RatingMatrix& slice,
                                       std::uint32_t epoch) const {
  switch (options_.policy) {
    case SchedulePolicy::kAsIs:
      return {};  // guaranteed no-op: the legacy order stays bit-identical
    case SchedulePolicy::kShuffled: {
      util::Stopwatch watch;
      util::Rng rng(epoch_seed(options_.seed, epoch));
      slice.shuffle(rng);
      ScheduleStats stats;
      stats.reorder_ms = watch.seconds() * 1e3;
      return stats;
    }
    case SchedulePolicy::kTiled:
      return prepare_tiled(slice, epoch);
  }
  return {};
}

ScheduleStats RatingScheduler::prepare_tiled(RatingMatrix& slice,
                                             std::uint32_t epoch) const {
  util::Stopwatch watch;
  const auto entries = slice.entries();
  const std::size_t n = entries.size();
  ScheduleStats stats;
  auto [row_span, col_span] = tile_spans(options_.tile_kb, k_);
  stats.row_span = row_span;
  stats.col_span = col_span;
  if (n < 2) {
    stats.tiles = n == 0 ? 0 : 1;
    stats.reorder_ms = watch.seconds() * 1e3;
    return stats;
  }
  assert(n <= std::numeric_limits<std::uint32_t>::max());

  // Slices keep global row ids; tile rows relative to the slice's own row
  // range so the budget buys local rows, not the whole matrix.
  std::uint32_t u_min = entries[0].u, u_max = entries[0].u;
  for (const auto& e : entries) {
    u_min = std::min(u_min, e.u);
    u_max = std::max(u_max, e.u);
  }
  auto tiles_for = [&](std::uint64_t rs, std::uint64_t cs) {
    const std::uint64_t row_tiles = (std::uint64_t(u_max - u_min) + rs) / rs;
    const std::uint64_t col_tiles =
        (std::uint64_t(std::max(1u, slice.cols())) + cs - 1) / cs;
    return row_tiles * col_tiles;
  };
  // A degenerate budget (tiny tile_kb against a huge slice) could demand
  // more tile bookkeeping than ratings; grow the spans until the tile
  // count is in a sane O(nnz) range.
  while (tiles_for(row_span, col_span) > std::max<std::uint64_t>(n, 1024)) {
    row_span = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(2 * std::uint64_t(row_span), 1u << 30));
    col_span = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(2 * std::uint64_t(col_span), 1u << 30));
  }
  stats.row_span = row_span;
  stats.col_span = col_span;
  const std::uint64_t col_tiles =
      (std::uint64_t(std::max(1u, slice.cols())) + col_span - 1) / col_span;
  const auto tiles = static_cast<std::uint32_t>(tiles_for(row_span, col_span));

  // Counting sort by tile id, visiting tiles in a per-epoch seeded order.
  std::vector<std::uint32_t> tile_of(n);
  std::vector<std::uint32_t> counts(tiles, 0);
  for (std::size_t idx = 0; idx < n; ++idx) {
    const Rating& e = entries[idx];
    const auto t = static_cast<std::uint32_t>(
        std::uint64_t((e.u - u_min) / row_span) * col_tiles +
        e.i / col_span);
    tile_of[idx] = t;
    ++counts[t];
  }
  std::vector<std::uint32_t> tile_order(tiles);
  std::iota(tile_order.begin(), tile_order.end(), 0u);
  util::Rng rng(epoch_seed(options_.seed, epoch));
  util::shuffle(tile_order, rng);

  std::vector<std::uint32_t> cursor(tiles, 0);
  std::uint32_t offset = 0;
  std::uint32_t occupied = 0;
  for (const std::uint32_t t : tile_order) {
    // Each occupied tile after the first starts a boundary the stealing
    // executor may cut a chunk on (see ScheduleStats::tile_offsets).
    if (counts[t] > 0 && offset > 0) stats.tile_offsets.push_back(offset);
    cursor[t] = offset;
    offset += counts[t];
    if (counts[t] > 0) ++occupied;
  }
  stats.tiles = occupied;

  // Stable within a tile: entries keep their original relative order.
  std::vector<std::uint32_t> order(n);
  for (std::size_t idx = 0; idx < n; ++idx) {
    order[cursor[tile_of[idx]]++] = static_cast<std::uint32_t>(idx);
  }

  if (options_.zorder) {
    // cursor[t] now points one past tile t's range end.
    for (std::uint32_t t = 0; t < tiles; ++t) {
      if (counts[t] < 2) continue;
      const auto begin = order.begin() + (cursor[t] - counts[t]);
      const auto end = order.begin() + cursor[t];
      std::sort(begin, end, [&](std::uint32_t a, std::uint32_t b) {
        const Rating& ea = entries[a];
        const Rating& eb = entries[b];
        return morton_key((ea.u - u_min) % row_span, ea.i % col_span) <
               morton_key((eb.u - u_min) % row_span, eb.i % col_span);
      });
    }
  }

  slice.permute(order);
  stats.reorder_ms = watch.seconds() * 1e3;
  return stats;
}

}  // namespace hcc::data
