// Row / column grid partitioning (Section 3.3, "Row (column) grid").
//
// HCC-MF's server divides the rating matrix into groups of consecutive rows
// (or columns), one group per worker.  The partition parameter x_i produced
// by the partition strategies (src/core/partition) is the *fraction of
// ratings* — not of rows — each worker should process, because the compute
// cost model is linear in assigned nnz (Eq. 2).  This module turns fractions
// into concrete contiguous row ranges whose nnz comes as close as possible
// to the targets.
#pragma once

#include <cstdint>
#include <vector>

#include "data/rating_matrix.hpp"

namespace hcc::data {

/// Grid orientation.  The paper uses row grids when m >= n (the common case
/// for recommender data) and column grids otherwise; row grids enable the
/// "Transmitting Q only" communication strategy.
enum class GridKind { kRow, kColumn };

/// Picks the grid orientation for a matrix per the paper's rule.
inline GridKind choose_grid(const RatingMatrix& matrix) {
  return matrix.rows() >= matrix.cols() ? GridKind::kRow : GridKind::kColumn;
}

/// One worker's assignment: the half-open row (or column) range and the
/// number of ratings that fall inside it.
struct GridRange {
  std::uint32_t begin = 0;
  std::uint32_t end = 0;  ///< exclusive
  std::size_t nnz = 0;

  std::uint32_t width() const noexcept { return end - begin; }
  friend bool operator==(const GridRange&, const GridRange&) = default;
};

/// Splits rows (GridKind::kRow) or columns into contiguous ranges so that
/// range i contains as close as possible to fractions[i] of all ratings.
///
/// Preconditions: fractions are non-negative and sum to ~1 (within 1e-6).
/// Postconditions (tested as invariants): the ranges tile [0, dim) exactly —
/// cover everything, never overlap, preserve order — and sum(nnz) == total.
std::vector<GridRange> make_grid(const RatingMatrix& matrix, GridKind kind,
                                 const std::vector<double>& fractions);

/// Materializes each worker's training slice.  For a row grid the matrix is
/// sorted by row and sliced; coordinates stay global.  For a column grid the
/// same happens on the transposed matrix (workers then treat columns as
/// rows, matching the paper's "switch to Transmitting P only" remark).
std::vector<RatingMatrix> assign_slices(RatingMatrix matrix, GridKind kind,
                                        const std::vector<GridRange>& grid);

}  // namespace hcc::data
