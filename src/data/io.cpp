#include "data/io.hpp"

#include <array>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace hcc::data {

namespace {
constexpr std::array<char, 4> kMagic = {'H', 'C', 'C', 'M'};
}

bool save_text(const RatingMatrix& matrix, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  for (const auto& e : matrix.entries()) {
    out << e.u << ' ' << e.i << ' ' << e.r << '\n';
  }
  return static_cast<bool>(out);
}

RatingMatrix load_text(const std::string& path, std::uint32_t rows,
                       std::uint32_t cols) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::vector<Rating> entries;
  std::uint32_t max_u = 0;
  std::uint32_t max_i = 0;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    Rating e;
    if (!(ls >> e.u >> e.i >> e.r)) {
      throw std::runtime_error(path + ":" + std::to_string(line_no) +
                               ": malformed rating line");
    }
    max_u = std::max(max_u, e.u);
    max_i = std::max(max_i, e.i);
    entries.push_back(e);
  }
  if (rows == 0 || cols == 0) {
    rows = max_u + 1;
    cols = max_i + 1;
  } else if (max_u >= rows || max_i >= cols) {
    throw std::runtime_error(path + ": entry outside declared dimensions");
  }
  return RatingMatrix(rows, cols, std::move(entries));
}

bool save_binary(const RatingMatrix& matrix, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out.write(kMagic.data(), kMagic.size());
  const std::uint32_t rows = matrix.rows();
  const std::uint32_t cols = matrix.cols();
  const std::uint64_t nnz = matrix.nnz();
  out.write(reinterpret_cast<const char*>(&rows), sizeof rows);
  out.write(reinterpret_cast<const char*>(&cols), sizeof cols);
  out.write(reinterpret_cast<const char*>(&nnz), sizeof nnz);
  out.write(reinterpret_cast<const char*>(matrix.entries().data()),
            static_cast<std::streamsize>(nnz * sizeof(Rating)));
  return static_cast<bool>(out);
}

RatingMatrix load_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::array<char, 4> magic{};
  in.read(magic.data(), magic.size());
  if (magic != kMagic) throw std::runtime_error(path + ": bad magic");
  std::uint32_t rows = 0;
  std::uint32_t cols = 0;
  std::uint64_t nnz = 0;
  in.read(reinterpret_cast<char*>(&rows), sizeof rows);
  in.read(reinterpret_cast<char*>(&cols), sizeof cols);
  in.read(reinterpret_cast<char*>(&nnz), sizeof nnz);
  if (!in) throw std::runtime_error(path + ": truncated header");
  std::vector<Rating> entries(nnz);
  in.read(reinterpret_cast<char*>(entries.data()),
          static_cast<std::streamsize>(nnz * sizeof(Rating)));
  if (!in) throw std::runtime_error(path + ": truncated entries");
  return RatingMatrix(rows, cols, std::move(entries));
}

}  // namespace hcc::data
