#include "data/io.hpp"

#include <array>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <limits>
#include <sstream>

namespace hcc::data {

namespace {
constexpr std::array<char, 4> kMagic = {'H', 'C', 'C', 'M'};
constexpr std::size_t kBinaryHeaderBytes =
    kMagic.size() + sizeof(std::uint32_t) * 2 + sizeof(std::uint64_t);
}  // namespace

bool save_text(const RatingMatrix& matrix, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  for (const auto& e : matrix.entries()) {
    out << e.u << ' ' << e.i << ' ' << e.r << '\n';
  }
  return static_cast<bool>(out);
}

RatingMatrix load_text(const std::string& path, std::uint32_t rows,
                       std::uint32_t cols) {
  std::ifstream in(path);
  if (!in) throw ParseError(path, 0, "cannot open");
  const bool declared = rows != 0 && cols != 0;
  std::vector<Rating> entries;
  std::uint32_t max_u = 0;
  std::uint32_t max_i = 0;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    Rating e;
    if (!(ls >> e.u >> e.i >> e.r)) {
      throw ParseError(path, line_no, "malformed rating line");
    }
    std::string rest;
    if (ls >> rest) {
      throw ParseError(path, line_no,
                       "trailing garbage after rating: '" + rest + "'");
    }
    if (!std::isfinite(e.r)) {
      throw ParseError(path, line_no, "non-finite rating");
    }
    if (declared && (e.u >= rows || e.i >= cols)) {
      throw ParseError(path, line_no, "entry outside declared dimensions");
    }
    max_u = std::max(max_u, e.u);
    max_i = std::max(max_i, e.i);
    entries.push_back(e);
  }
  if (!declared) {
    if (!entries.empty() &&
        (max_u == std::numeric_limits<std::uint32_t>::max() ||
         max_i == std::numeric_limits<std::uint32_t>::max())) {
      throw ParseError(path, 0, "index too large to infer dimensions");
    }
    rows = max_u + 1;
    cols = max_i + 1;
  }
  return RatingMatrix(rows, cols, std::move(entries));
}

bool save_binary(const RatingMatrix& matrix, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out.write(kMagic.data(), kMagic.size());
  const std::uint32_t rows = matrix.rows();
  const std::uint32_t cols = matrix.cols();
  const std::uint64_t nnz = matrix.nnz();
  out.write(reinterpret_cast<const char*>(&rows), sizeof rows);
  out.write(reinterpret_cast<const char*>(&cols), sizeof cols);
  out.write(reinterpret_cast<const char*>(&nnz), sizeof nnz);
  out.write(reinterpret_cast<const char*>(matrix.entries().data()),
            static_cast<std::streamsize>(nnz * sizeof(Rating)));
  return static_cast<bool>(out);
}

RatingMatrix load_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ParseError(path, 0, "cannot open");
  in.seekg(0, std::ios::end);
  const auto file_size = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0, std::ios::beg);
  std::array<char, 4> magic{};
  in.read(magic.data(), magic.size());
  if (!in || magic != kMagic) throw ParseError(path, 0, "bad magic");
  std::uint32_t rows = 0;
  std::uint32_t cols = 0;
  std::uint64_t nnz = 0;
  in.read(reinterpret_cast<char*>(&rows), sizeof rows);
  in.read(reinterpret_cast<char*>(&cols), sizeof cols);
  in.read(reinterpret_cast<char*>(&nnz), sizeof nnz);
  if (!in) throw ParseError(path, 0, "truncated header");
  // Check the claimed entry count against the actual file size *before*
  // allocating: a corrupt header must not trigger a huge allocation.
  if (nnz > (std::numeric_limits<std::uint64_t>::max() - kBinaryHeaderBytes) /
                sizeof(Rating) ||
      kBinaryHeaderBytes + nnz * sizeof(Rating) != file_size) {
    throw ParseError(path, 0,
                     "header claims " + std::to_string(nnz) +
                         " entries but file holds " +
                         std::to_string(file_size) + " bytes");
  }
  std::vector<Rating> entries(nnz);
  in.read(reinterpret_cast<char*>(entries.data()),
          static_cast<std::streamsize>(nnz * sizeof(Rating)));
  if (!in) throw ParseError(path, 0, "truncated entries");
  for (std::size_t idx = 0; idx < entries.size(); ++idx) {
    const Rating& e = entries[idx];
    if (e.u >= rows || e.i >= cols) {
      throw ParseError(path, 0,
                       "entry " + std::to_string(idx) + " outside " +
                           std::to_string(rows) + "x" + std::to_string(cols));
    }
    if (!std::isfinite(e.r)) {
      throw ParseError(path, 0,
                       "entry " + std::to_string(idx) + " has a non-finite "
                           "rating");
    }
  }
  return RatingMatrix(rows, cols, std::move(entries));
}

}  // namespace hcc::data
