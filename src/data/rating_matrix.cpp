#include "data/rating_matrix.hpp"

#include <algorithm>
#include <cassert>

namespace hcc::data {

RatingMatrix::RatingMatrix(std::uint32_t rows, std::uint32_t cols,
                           std::vector<Rating> entries)
    : rows_(rows), cols_(cols), entries_(std::move(entries)) {
#ifndef NDEBUG
  for (const auto& e : entries_) {
    assert(e.u < rows_ && e.i < cols_);
  }
#endif
}

double RatingMatrix::density() const noexcept {
  if (rows_ == 0 || cols_ == 0) return 0.0;
  return static_cast<double>(entries_.size()) /
         (static_cast<double>(rows_) * static_cast<double>(cols_));
}

void RatingMatrix::add(std::uint32_t u, std::uint32_t i, float r) {
  assert(u < rows_ && i < cols_);
  entries_.push_back(Rating{u, i, r});
}

void RatingMatrix::append(std::span<const Rating> entries) {
#ifndef NDEBUG
  for (const auto& e : entries) {
    assert(e.u < rows_ && e.i < cols_);
  }
#endif
  entries_.insert(entries_.end(), entries.begin(), entries.end());
}

void RatingMatrix::shuffle(util::Rng& rng) { util::shuffle(entries_, rng); }

void RatingMatrix::permute(std::span<const std::uint32_t> perm) {
  assert(perm.size() == entries_.size());
#ifndef NDEBUG
  {
    std::vector<bool> seen(perm.size(), false);
    for (const std::uint32_t src : perm) {
      assert(src < entries_.size() && !seen[src] &&
             "permute() requires a permutation of [0, nnz)");
      seen[src] = true;
    }
  }
#endif
  std::vector<Rating> reordered;
  reordered.reserve(entries_.size());
  for (const std::uint32_t src : perm) reordered.push_back(entries_[src]);
  entries_ = std::move(reordered);
}

void RatingMatrix::sort_by_row() {
  std::stable_sort(entries_.begin(), entries_.end(),
                   [](const Rating& a, const Rating& b) {
                     return a.u != b.u ? a.u < b.u : a.i < b.i;
                   });
}

void RatingMatrix::sort_by_col() {
  std::stable_sort(entries_.begin(), entries_.end(),
                   [](const Rating& a, const Rating& b) {
                     return a.i != b.i ? a.i < b.i : a.u < b.u;
                   });
}

std::vector<std::size_t> RatingMatrix::row_counts() const {
  std::vector<std::size_t> counts(rows_, 0);
  for (const auto& e : entries_) ++counts[e.u];
  return counts;
}

std::vector<std::size_t> RatingMatrix::col_counts() const {
  std::vector<std::size_t> counts(cols_, 0);
  for (const auto& e : entries_) ++counts[e.i];
  return counts;
}

RatingMatrix RatingMatrix::transposed() const {
  std::vector<Rating> flipped;
  flipped.reserve(entries_.size());
  for (const auto& e : entries_) flipped.push_back(Rating{e.i, e.u, e.r});
  return RatingMatrix(cols_, rows_, std::move(flipped));
}

RatingMatrix RatingMatrix::slice_rows(std::uint32_t row_begin,
                                      std::uint32_t row_end) const {
  assert(row_begin <= row_end && row_end <= rows_);
  const auto lo = std::lower_bound(
      entries_.begin(), entries_.end(), row_begin,
      [](const Rating& e, std::uint32_t row) { return e.u < row; });
  const auto hi = std::lower_bound(
      lo, entries_.end(), row_end,
      [](const Rating& e, std::uint32_t row) { return e.u < row; });
  return RatingMatrix(rows_, cols_, std::vector<Rating>(lo, hi));
}

CsrIndex::CsrIndex(const RatingMatrix& matrix) {
  offsets_.assign(matrix.rows() + 1, 0);
  for (const auto& e : matrix.entries()) ++offsets_[e.u + 1];
  for (std::size_t r = 1; r < offsets_.size(); ++r) {
    offsets_[r] += offsets_[r - 1];
  }
#ifndef NDEBUG
  // Sorted-by-row precondition: entries of row r must occupy exactly
  // [offsets_[r], offsets_[r+1]).
  const auto entries = matrix.entries();
  for (std::uint32_t r = 0; r < matrix.rows(); ++r) {
    for (std::size_t idx = offsets_[r]; idx < offsets_[r + 1]; ++idx) {
      assert(entries[idx].u == r && "CsrIndex requires sort_by_row()");
    }
  }
#endif
}

}  // namespace hcc::data
