#include "data/datasets.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <stdexcept>

namespace hcc::data {

DatasetSpec DatasetSpec::scaled(double factor) const {
  DatasetSpec s = *this;
  if (factor >= 1.0) return s;
  // Dimensions scale by sqrt-ish of the nnz factor so that nnz/(m+n) — the
  // compute-to-communication ratio the framework keys off — is preserved.
  const double dim_factor = factor;
  s.m = std::max<std::uint32_t>(16, static_cast<std::uint32_t>(std::llround(m * dim_factor)));
  s.n = std::max<std::uint32_t>(16, static_cast<std::uint32_t>(std::llround(n * dim_factor)));
  s.nnz = std::max<std::uint64_t>(
      256, static_cast<std::uint64_t>(std::llround(static_cast<double>(nnz) * factor)));
  s.name = name + "@" + std::to_string(factor);
  return s;
}

DatasetSpec netflix_spec() {
  return DatasetSpec{.name = "netflix",
                     .m = 480190,
                     .n = 17771,
                     .nnz = 99072112,
                     .reg_lambda = 0.01f,
                     .learn_rate = 0.005f,
                     .rating_min = 1.0f,
                     .rating_max = 5.0f};
}

DatasetSpec yahoo_r1_spec() {
  return DatasetSpec{.name = "r1",
                     .m = 1948883,
                     .n = 1101750,
                     .nnz = 115579437,
                     .reg_lambda = 1.0f,
                     .learn_rate = 0.005f,
                     .rating_min = 0.0f,
                     .rating_max = 100.0f};
}

DatasetSpec yahoo_r1_star_spec() {
  DatasetSpec s = yahoo_r1_spec();
  s.name = "r1star";
  s.nnz = 199999997;  // R1 plus uniformly added ratings (paper Section 4.1)
  return s;
}

DatasetSpec yahoo_r2_spec() {
  return DatasetSpec{.name = "r2",
                     .m = 1000000,
                     .n = 136736,
                     .nnz = 383838609,
                     .reg_lambda = 0.01f,
                     .learn_rate = 0.005f,
                     .rating_min = 0.0f,
                     .rating_max = 5.0f};
}

DatasetSpec movielens20m_spec() {
  return DatasetSpec{.name = "movielens",
                     .m = 138494,
                     .n = 131263,
                     .nnz = 20000260,
                     .reg_lambda = 0.01f,
                     .learn_rate = 0.005f,
                     .rating_min = 0.5f,
                     .rating_max = 5.0f};
}

std::vector<DatasetSpec> paper_datasets() {
  return {netflix_spec(), yahoo_r1_spec(), yahoo_r1_star_spec(),
          yahoo_r2_spec(), movielens20m_spec()};
}

DatasetSpec dataset_by_name(const std::string& name) {
  std::string key;
  key.reserve(name.size());
  for (char ch : name) key += static_cast<char>(std::tolower(ch));
  if (key == "netflix") return netflix_spec();
  if (key == "r1") return yahoo_r1_spec();
  if (key == "r1star" || key == "r1*" || key == "r1_new") return yahoo_r1_star_spec();
  if (key == "r2") return yahoo_r2_spec();
  if (key == "movielens" || key == "movielens-20m" || key == "ml20m") return movielens20m_spec();
  throw std::invalid_argument("unknown dataset: " + name);
}

RatingMatrix generate(const DatasetSpec& spec, const GeneratorConfig& config) {
  util::Rng rng(config.seed);

  // Planted factors P* (m x k0) and Q* (k0 x n).  Entries are chosen so the
  // products land inside the rating scale: with k0 terms of mean mu^2, the
  // expected rating is k0*mu^2 = mid-scale.
  const std::uint32_t k0 = config.planted_rank;
  const float mid =
      0.5f * (spec.rating_min + spec.rating_max);
  const float mu = std::sqrt(mid / static_cast<float>(k0));
  const float sigma = 0.35f * mu;

  std::vector<float> pstar(static_cast<std::size_t>(spec.m) * k0);
  std::vector<float> qstar(static_cast<std::size_t>(spec.n) * k0);
  for (auto& v : pstar) v = static_cast<float>(rng.normal(mu, sigma));
  for (auto& v : qstar) v = static_cast<float>(rng.normal(mu, sigma));

  // Optional planted user/item rating offsets (for bias-model extensions).
  std::vector<float> user_bias(spec.m, 0.0f);
  std::vector<float> item_bias(spec.n, 0.0f);
  if (config.user_bias_stddev > 0.0f) {
    for (auto& b : user_bias) {
      b = static_cast<float>(rng.normal(0.0, config.user_bias_stddev));
    }
  }
  if (config.item_bias_stddev > 0.0f) {
    for (auto& b : item_bias) {
      b = static_cast<float>(rng.normal(0.0, config.item_bias_stddev));
    }
  }

  // Zipf popularity with a shuffled identity so that popular users/items are
  // scattered over the index space (real datasets are not sorted by
  // popularity; the paper's shuffling step also destroys such order).
  util::ZipfSampler user_pop(spec.m, config.zipf_user);
  util::ZipfSampler item_pop(spec.n, config.zipf_item);
  std::vector<std::uint32_t> user_map(spec.m), item_map(spec.n);
  for (std::uint32_t u = 0; u < spec.m; ++u) user_map[u] = u;
  for (std::uint32_t i = 0; i < spec.n; ++i) item_map[i] = i;
  util::shuffle(user_map, rng);
  util::shuffle(item_map, rng);

  RatingMatrix ratings(spec.m, spec.n);
  ratings.reserve(spec.nnz);
  const float span = spec.rating_max - spec.rating_min;
  const float step = span <= 10.0f ? 0.5f : 1.0f;  // coarse rating scales
  for (std::uint64_t e = 0; e < spec.nnz; ++e) {
    const std::uint32_t u = user_map[user_pop(rng)];
    const std::uint32_t i = item_map[item_pop(rng)];
    const float* pu = &pstar[static_cast<std::size_t>(u) * k0];
    const float* qi = &qstar[static_cast<std::size_t>(i) * k0];
    float dot = 0.0f;
    for (std::uint32_t f = 0; f < k0; ++f) dot += pu[f] * qi[f];
    float r = dot + user_bias[u] + item_bias[i] +
              static_cast<float>(rng.normal(0.0, config.noise_stddev));
    r = std::clamp(r, spec.rating_min, spec.rating_max);
    if (config.quantize_half_steps) {
      r = spec.rating_min + step * std::round((r - spec.rating_min) / step);
    }
    ratings.add(u, i, r);
  }
  ratings.shuffle(rng);
  return ratings;
}

std::pair<RatingMatrix, RatingMatrix> train_test_split(
    const RatingMatrix& ratings, double holdout_fraction, util::Rng& rng) {
  RatingMatrix train(ratings.rows(), ratings.cols());
  RatingMatrix test(ratings.rows(), ratings.cols());
  for (const auto& e : ratings.entries()) {
    if (rng.uniform() < holdout_fraction) {
      test.add(e.u, e.i, e.r);
    } else {
      train.add(e.u, e.i, e.r);
    }
  }
  return {std::move(train), std::move(test)};
}

}  // namespace hcc::data
