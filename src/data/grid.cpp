#include "data/grid.hpp"

#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace hcc::data {

std::vector<GridRange> make_grid(const RatingMatrix& matrix, GridKind kind,
                                 const std::vector<double>& fractions) {
  if (fractions.empty()) {
    throw std::invalid_argument("make_grid: no workers");
  }
  double sum = 0.0;
  for (double f : fractions) {
    if (f < 0.0) throw std::invalid_argument("make_grid: negative fraction");
    sum += f;
  }
  if (std::abs(sum - 1.0) > 1e-6) {
    throw std::invalid_argument("make_grid: fractions must sum to 1");
  }

  const std::vector<std::size_t> counts = kind == GridKind::kRow
                                              ? matrix.row_counts()
                                              : matrix.col_counts();
  const std::uint32_t dim = static_cast<std::uint32_t>(counts.size());
  const std::size_t total = matrix.nnz();

  std::vector<GridRange> grid(fractions.size());
  std::uint32_t cursor = 0;
  std::size_t consumed = 0;
  double target_cum = 0.0;
  for (std::size_t w = 0; w < fractions.size(); ++w) {
    target_cum += fractions[w];
    // Worker w's range ends where cumulative nnz first reaches the
    // cumulative target; choosing the closer of the two straddling
    // boundaries halves the rounding error.
    const double target =
        target_cum * static_cast<double>(total);
    std::uint32_t end = cursor;
    std::size_t cum = consumed;
    while (end < dim && static_cast<double>(cum) < target) {
      cum += counts[end];
      ++end;
    }
    if (end > cursor && end < dim) {
      const double over = static_cast<double>(cum) - target;
      const double under = target - static_cast<double>(cum - counts[end - 1]);
      if (under < over) {
        --end;
        cum -= counts[end];
      }
    }
    if (w + 1 == fractions.size()) {
      // Last worker absorbs any rounding remainder so the grid tiles fully.
      while (end < dim) {
        cum += counts[end];
        ++end;
      }
    }
    grid[w] = GridRange{cursor, end, cum - consumed};
    cursor = end;
    consumed = cum;
  }
  assert(cursor == dim && consumed == total);
  return grid;
}

std::vector<RatingMatrix> assign_slices(RatingMatrix matrix, GridKind kind,
                                        const std::vector<GridRange>& grid) {
  if (kind == GridKind::kColumn) {
    matrix = matrix.transposed();
  }
  matrix.sort_by_row();
  std::vector<RatingMatrix> slices;
  slices.reserve(grid.size());
  for (const auto& range : grid) {
    slices.push_back(matrix.slice_rows(range.begin, range.end));
  }
  return slices;
}

}  // namespace hcc::data
