// Plain-text and binary serialization for rating matrices.
//
// Text format is the conventional "u i r" triple per line (what the public
// Netflix/MovieLens tooling uses); binary format is a small header plus the
// raw entry array for fast reload of generated datasets.
#pragma once

#include <string>

#include "data/rating_matrix.hpp"

namespace hcc::data {

/// Writes "u i r" lines.  Returns false on IO failure.
bool save_text(const RatingMatrix& matrix, const std::string& path);

/// Reads "u i r" lines; infers dimensions from the max indices unless both
/// `rows` and `cols` are nonzero.  Throws std::runtime_error on parse errors.
RatingMatrix load_text(const std::string& path, std::uint32_t rows = 0,
                       std::uint32_t cols = 0);

/// Writes the binary format (magic "HCCM", dims, nnz, raw entries).
bool save_binary(const RatingMatrix& matrix, const std::string& path);

/// Reads the binary format.  Throws std::runtime_error on a bad header.
RatingMatrix load_binary(const std::string& path);

}  // namespace hcc::data
