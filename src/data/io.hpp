// Plain-text and binary serialization for rating matrices.
//
// Text format is the conventional "u i r" triple per line (what the public
// Netflix/MovieLens tooling uses); binary format is a small header plus the
// raw entry array for fast reload of generated datasets.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

#include "data/rating_matrix.hpp"

namespace hcc::data {

/// Loader rejection with the offending location attached.  `line()` is
/// 1-based for text formats and 0 when the whole file (header, size) is at
/// fault.  Derives from std::runtime_error so existing catch sites keep
/// working.
class ParseError : public std::runtime_error {
 public:
  ParseError(std::string path, std::size_t line, const std::string& what)
      : std::runtime_error(line > 0 ? path + ":" + std::to_string(line) +
                                          ": " + what
                                    : path + ": " + what),
        path_(std::move(path)),
        line_(line) {}

  const std::string& path() const noexcept { return path_; }
  std::size_t line() const noexcept { return line_; }

 private:
  std::string path_;
  std::size_t line_;
};

/// Writes "u i r" lines.  Returns false on IO failure.
bool save_text(const RatingMatrix& matrix, const std::string& path);

/// Reads "u i r" lines; infers dimensions from the max indices unless both
/// `rows` and `cols` are nonzero.  Throws ParseError (a std::runtime_error)
/// naming the offending line on malformed triples, trailing garbage,
/// non-finite ratings and out-of-range ids.
RatingMatrix load_text(const std::string& path, std::uint32_t rows = 0,
                       std::uint32_t cols = 0);

/// Writes the binary format (magic "HCCM", dims, nnz, raw entries).
bool save_binary(const RatingMatrix& matrix, const std::string& path);

/// Reads the binary format.  Throws ParseError on a bad magic/header, an
/// nnz that disagrees with the file size (checked *before* allocating), or
/// out-of-range / non-finite entries.
RatingMatrix load_binary(const std::string& path);

}  // namespace hcc::data
