// Dataset catalogue and synthetic generators.
//
// The paper evaluates on Netflix, Yahoo! Music R1 / R1* / R2 and
// MovieLens-20m (Table 3).  Those datasets are proprietary or withdrawn, so
// this module reproduces each one's *shape*: (m, n, nnz) at a configurable
// scale, Zipf-skewed user/item popularity, and a planted low-rank structure
// with noise so SGD training has a real signal to recover.  The framework's
// scheduling decisions depend only on the shape, and convergence behaviour
// depends on the planted structure, so experiments preserve the paper's
// qualitative results (see DESIGN.md, substitution table).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/rating_matrix.hpp"
#include "util/rng.hpp"

namespace hcc::data {

/// Static description of a dataset: the paper's Table 3 rows.
struct DatasetSpec {
  std::string name;
  std::uint32_t m = 0;      ///< users (rows of R)
  std::uint32_t n = 0;      ///< items (columns of R)
  std::uint64_t nnz = 0;    ///< observed ratings
  float reg_lambda = 0.01f; ///< L2 regularization (paper's lambda_1=lambda_2)
  float learn_rate = 0.005f;
  float rating_min = 1.0f;
  float rating_max = 5.0f;

  /// Returns a copy with m, n and nnz scaled by `factor` (0 < factor <= 1),
  /// preserving the aspect ratio nnz/(m+n) as far as rounding allows.
  DatasetSpec scaled(double factor) const;

  /// The paper's communication-boundedness indicator nnz/(m+n); Section 3.4
  /// argues comm and compute costs reach the same order of magnitude when
  /// this drops below ~1e3.
  double nnz_per_dim() const {
    return static_cast<double>(nnz) / (static_cast<double>(m) + n);
  }
};

/// Table 3 presets (gamma = 0.005 for all).
DatasetSpec netflix_spec();
DatasetSpec yahoo_r1_spec();
DatasetSpec yahoo_r1_star_spec();  ///< R1 densified with uniform extra data
DatasetSpec yahoo_r2_spec();
DatasetSpec movielens20m_spec();

/// All five presets in the paper's order.
std::vector<DatasetSpec> paper_datasets();

/// Looks up a preset by (case-insensitive) name: "netflix", "r1", "r1star",
/// "r2", "movielens".  Throws std::invalid_argument for unknown names.
DatasetSpec dataset_by_name(const std::string& name);

/// Knobs for the synthetic generator.
struct GeneratorConfig {
  std::uint64_t seed = 42;
  std::uint32_t planted_rank = 8;  ///< rank of the hidden P*,Q* structure
  float noise_stddev = 0.25f;      ///< observation noise added to P*Q*
  double zipf_user = 0.8;          ///< popularity skew over users
  double zipf_item = 1.0;          ///< popularity skew over items
  bool quantize_half_steps = true; ///< snap ratings to 0.5 steps (real
                                   ///< systems use coarse scales; motivates
                                   ///< the FP16 strategy, Section 3.4)
  float user_bias_stddev = 0.0f;   ///< planted per-user rating offset
  float item_bias_stddev = 0.0f;   ///< planted per-item rating offset
};

/// Generates a rating matrix with `spec`'s dimensions and a planted rank-
/// `config.planted_rank` structure.  Entries are shuffled (random visit
/// order).  Duplicate (u, i) draws are kept: for SGD they are simply repeated
/// observations of the same cell and do not affect the framework's behaviour.
RatingMatrix generate(const DatasetSpec& spec, const GeneratorConfig& config);

/// Splits `ratings` into train/test by holding out every k-th entry
/// (holdout_fraction of the data, deterministically spread).  Returns
/// {train, test}.
std::pair<RatingMatrix, RatingMatrix> train_test_split(
    const RatingMatrix& ratings, double holdout_fraction, util::Rng& rng);

}  // namespace hcc::data
