// Software prefetch hints for the SGD inner loop.
//
// Eq. 2's 16k+4 bytes per rating are dominated by the P and Q row reads;
// once the rating scheduler (data/schedule.hpp) makes the *next* rating's
// rows predictable, hinting them one update ahead hides the remaining
// L2/L3 latency behind the current update's FMA chain.  Hints only: no
// fault, no side effect on results, a nop where unsupported — so the
// kAsIs bit-identical contract is unaffected.
#pragma once

#include <cstdint>

#if defined(__SSE2__) || defined(__SSE__)
#include <xmmintrin.h>
#define HCCMF_PREFETCH_SSE 1
#endif

namespace hcc::simd {

/// Hints one cache line into all levels (read intent).
inline void prefetch_line(const void* addr) noexcept {
#if defined(HCCMF_PREFETCH_SSE)
  _mm_prefetch(static_cast<const char*>(addr), _MM_HINT_T0);
#elif defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(addr, 0, 3);
#else
  (void)addr;
#endif
}

/// Hints the leading cache lines of a k-float factor row.  Capped at four
/// lines (64 floats): that is enough to start the hardware stream
/// prefetcher, which follows the row the moment the first demand load
/// confirms the stream.
inline void prefetch_row(const float* row, std::uint32_t k) noexcept {
  constexpr std::uint32_t kFloatsPerLine = 64 / sizeof(float);
  const std::uint32_t floats =
      k < 4 * kFloatsPerLine ? k : 4 * kFloatsPerLine;
  for (std::uint32_t f = 0; f < floats; f += kFloatsPerLine) {
    prefetch_line(row + f);
  }
}

}  // namespace hcc::simd
