// NEON (aarch64) kernel table (4-wide float lanes).
//
// NEON and the binary16 conversion instructions are ARMv8-A baseline, so no
// per-file -m flags are needed beyond -ffp-contract=off for the scalar
// tails; the dispatcher offers this table on any aarch64 build.  The fcvt
// conversions honor the default FPCR state (round-to-nearest-even, gradual
// underflow, NaN payloads propagated), matching the scalar codec bit-exactly
// as long as the process leaves FPCR alone.
#include "simd/kernel_table.hpp"
#include "simd/scalar_impl.hpp"

#if !defined(__aarch64__)
#error "kernels_neon.cpp must only be compiled for aarch64 targets"
#endif

#include <arm_neon.h>

namespace hcc::simd {
namespace {

float dot_neon(const float* a, const float* b, std::uint32_t k) noexcept {
  float32x4_t acc0 = vdupq_n_f32(0.0f);
  float32x4_t acc1 = vdupq_n_f32(0.0f);
  std::uint32_t f = 0;
  for (; f + 8 <= k; f += 8) {
    acc0 = vfmaq_f32(acc0, vld1q_f32(a + f), vld1q_f32(b + f));
    acc1 = vfmaq_f32(acc1, vld1q_f32(a + f + 4), vld1q_f32(b + f + 4));
  }
  if (f + 4 <= k) {
    acc0 = vfmaq_f32(acc0, vld1q_f32(a + f), vld1q_f32(b + f));
    f += 4;
  }
  float dot = vaddvq_f32(vaddq_f32(acc0, acc1));
  for (; f < k; ++f) dot += a[f] * b[f];
  return dot;
}

void score_block_neon(const float* user, const float* q, std::uint32_t k,
                      std::uint32_t n_items, const std::uint8_t* skip_bits,
                      float* scores) noexcept {
  constexpr float kNegInf = -std::numeric_limits<float>::infinity();
  std::uint32_t i = 0;
  for (; i + 8 <= n_items; i += 8) {
    // i is a multiple of 8, so the pass's mask is exactly one bitset byte.
    const unsigned mask = skip_bits != nullptr ? skip_bits[i / 8] : 0u;
    if (mask == 0xffu) {
      for (unsigned j = 0; j < 8; ++j) scores[i + j] = kNegInf;
      continue;
    }
    const float* rows = q + static_cast<std::size_t>(i) * k;
    // One accumulator per item; the user chunk is loaded once and reused
    // across all 8 rows, so Q streams through at one fma per element.
    float32x4_t acc[8];
    for (unsigned j = 0; j < 8; ++j) acc[j] = vdupq_n_f32(0.0f);
    std::uint32_t f = 0;
    for (; f + 4 <= k; f += 4) {
      const float32x4_t vu = vld1q_f32(user + f);
      for (unsigned j = 0; j < 8; ++j) {
        acc[j] = vfmaq_f32(
            acc[j], vu, vld1q_f32(rows + static_cast<std::size_t>(j) * k + f));
      }
    }
    for (unsigned j = 0; j < 8; ++j) {
      float s = vaddvq_f32(acc[j]);
      const float* row = rows + static_cast<std::size_t>(j) * k;
      for (std::uint32_t t = f; t < k; ++t) s += user[t] * row[t];
      scores[i + j] = ((mask >> j) & 1u) != 0 ? kNegInf : s;
    }
  }
  if (i < n_items) {
    detail::scalar_score_block(
        user, q + static_cast<std::size_t>(i) * k, k, n_items - i,
        skip_bits != nullptr ? skip_bits + i / 8 : nullptr, scores + i);
  }
}

void sgd_apply_neon(float* p, float* q, std::uint32_t k, float err, float lr,
                    float reg_p, float reg_q) noexcept {
  const float32x4_t verr = vdupq_n_f32(err);
  const float32x4_t vlr = vdupq_n_f32(lr);
  const float32x4_t vreg_p = vdupq_n_f32(reg_p);
  const float32x4_t vreg_q = vdupq_n_f32(reg_q);
  std::uint32_t f = 0;
  for (; f + 4 <= k; f += 4) {
    const float32x4_t vp = vld1q_f32(p + f);
    const float32x4_t vq = vld1q_f32(q + f);
    // g_p = err*q - reg_p*p ; g_q = err*p_old - reg_q*q
    const float32x4_t gp = vfmsq_f32(vmulq_f32(verr, vq), vreg_p, vp);
    const float32x4_t gq = vfmsq_f32(vmulq_f32(verr, vp), vreg_q, vq);
    vst1q_f32(p + f, vfmaq_f32(vp, vlr, gp));
    vst1q_f32(q + f, vfmaq_f32(vq, vlr, gq));
  }
  if (f < k) detail::scalar_sgd_apply(p + f, q + f, k - f, err, lr, reg_p,
                                      reg_q);
}

float sgd_update_neon(float* p, float* q, std::uint32_t k, float r, float lr,
                      float reg_p, float reg_q) noexcept {
  const float err = r - dot_neon(p, q, k);
  sgd_apply_neon(p, q, k, err, lr, reg_p, reg_q);
  return err;
}

double sum_squares_neon(const float* v, std::size_t n) noexcept {
  float64x2_t acc0 = vdupq_n_f64(0.0);
  float64x2_t acc1 = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t s = vld1q_f32(v + i);
    const float64x2_t lo = vcvt_f64_f32(vget_low_f32(s));
    const float64x2_t hi = vcvt_f64_f32(vget_high_f32(s));
    acc0 = vfmaq_f64(acc0, lo, lo);
    acc1 = vfmaq_f64(acc1, hi, hi);
  }
  double sum = vaddvq_f64(vaddq_f64(acc0, acc1));
  for (; i < n; ++i) sum += static_cast<double>(v[i]) * v[i];
  return sum;
}

bool all_finite_neon(const float* v, std::size_t n) noexcept {
  const uint32x4_t exp_mask = vdupq_n_u32(0x7f80'0000u);
  uint32x4_t bad = vdupq_n_u32(0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const uint32x4_t bits = vreinterpretq_u32_f32(vld1q_f32(v + i));
    bad = vorrq_u32(bad, vceqq_u32(vandq_u32(bits, exp_mask), exp_mask));
  }
  if (vmaxvq_u32(bad) != 0) return false;
  return detail::scalar_all_finite(v + i, n - i);
}

void fp16_encode_neon(const float* src, util::Half* dst,
                      std::size_t n) noexcept {
  auto* out = reinterpret_cast<std::uint16_t*>(dst);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float16x4_t h = vcvt_f16_f32(vld1q_f32(src + i));
    vst1_u16(out + i, vreinterpret_u16_f16(h));
  }
  if (i < n) detail::scalar_fp16_encode(src + i, dst + i, n - i);
}

void fp16_decode_neon(const util::Half* src, float* dst,
                      std::size_t n) noexcept {
  const auto* in = reinterpret_cast<const std::uint16_t*>(src);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float16x4_t h = vreinterpret_f16_u16(vld1_u16(in + i));
    vst1q_f32(dst + i, vcvt_f32_f16(h));
  }
  if (i < n) detail::scalar_fp16_decode(src + i, dst + i, n - i);
}

// --- sub-FP16 quantization (bit-exact vs the scalar references: exact
// compares/multiplies, RNE integer rounding, no FMA anywhere) ---

float absmax_neon(const float* v, std::size_t n) noexcept {
  float32x4_t m = vdupq_n_f32(0.0f);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    m = vmaxq_f32(m, vabsq_f32(vld1q_f32(v + i)));
  }
  float result = vmaxvq_f32(m);
  for (; i < n; ++i) {
    const float a = std::fabs(v[i]);
    if (a > result) result = a;
  }
  return result;
}

void ef_delta_neon(const float* src, const float* ref, const float* residual,
                   float* e, std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t d = vsubq_f32(vld1q_f32(src + i), vld1q_f32(ref + i));
    vst1q_f32(e + i, vaddq_f32(d, vld1q_f32(residual + i)));
  }
  if (i < n) detail::scalar_ef_delta(src + i, ref + i, residual + i, e + i,
                                     n - i);
}

void int8_encode_neon(const float* e, float inv_scale, std::int8_t* q,
                      std::size_t n) noexcept {
  const float32x4_t vs = vdupq_n_f32(inv_scale);
  const int32x4_t vmax = vdupq_n_s32(127);
  const int32x4_t vmin = vdupq_n_s32(-127);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    // vcvtnq rounds to nearest-even, matching the scalar lrintf.
    int32x4_t a = vcvtnq_s32_f32(vmulq_f32(vld1q_f32(e + i), vs));
    int32x4_t b = vcvtnq_s32_f32(vmulq_f32(vld1q_f32(e + i + 4), vs));
    a = vminq_s32(vmaxq_s32(a, vmin), vmax);
    b = vminq_s32(vmaxq_s32(b, vmin), vmax);
    const int16x8_t w = vcombine_s16(vmovn_s32(a), vmovn_s32(b));
    vst1_s8(q + i, vmovn_s16(w));
  }
  if (i < n) detail::scalar_int8_encode(e + i, inv_scale, q + i, n - i);
}

void int8_commit_neon(const std::int8_t* q, float scale, const float* e,
                      float* ref, float* residual, float* dst,
                      std::size_t n) noexcept {
  const float32x4_t vscale = vdupq_n_f32(scale);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const int16x8_t w = vmovl_s8(vld1_s8(q + i));
    const int32x4_t lo = vmovl_s16(vget_low_s16(w));
    const int32x4_t hi = vmovl_s16(vget_high_s16(w));
    const float32x4_t dq0 = vmulq_f32(vcvtq_f32_s32(lo), vscale);
    const float32x4_t dq1 = vmulq_f32(vcvtq_f32_s32(hi), vscale);
    const float32x4_t out0 = vaddq_f32(vld1q_f32(ref + i), dq0);
    const float32x4_t out1 = vaddq_f32(vld1q_f32(ref + i + 4), dq1);
    vst1q_f32(residual + i, vsubq_f32(vld1q_f32(e + i), dq0));
    vst1q_f32(residual + i + 4, vsubq_f32(vld1q_f32(e + i + 4), dq1));
    vst1q_f32(ref + i, out0);
    vst1q_f32(ref + i + 4, out1);
    vst1q_f32(dst + i, out0);
    vst1q_f32(dst + i + 4, out1);
  }
  if (i < n) detail::scalar_int8_commit(q + i, scale, e + i, ref + i,
                                        residual + i, dst + i, n - i);
}

}  // namespace

const KernelTable& neon_kernels() noexcept {
  static const KernelTable table{
      Isa::kNeon,
      "neon",
      dot_neon,
      score_block_neon,
      sgd_update_neon,
      sgd_apply_neon,
      sum_squares_neon,
      all_finite_neon,
      fp16_encode_neon,
      fp16_decode_neon,
      absmax_neon,
      ef_delta_neon,
      int8_encode_neon,
      int8_commit_neon,
      // NEON has no movemask; the 2-bit pack/unpack would be a lane-by-lane
      // extract either way, so the portable reference is used as-is (the
      // commit's float work is memory-bound at 2 bits/value regardless).
      detail::scalar_two_bit_encode,
      detail::scalar_two_bit_commit,
  };
  return table;
}

}  // namespace hcc::simd
