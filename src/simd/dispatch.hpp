// Runtime CPU-feature dispatch for the SIMD kernel tables.
//
// Resolution happens once, on the first call to kernels():
//   1. If the HCCMF_SIMD environment variable names an ISA
//      (scalar|avx2|avx512|neon) and that ISA is available on this host and
//      in this binary, it wins — this is how CI pins a deterministic
//      backend and how benchmarks compare backends.
//   2. Otherwise the best ISA the CPU supports among those compiled in is
//      chosen (cpuid on x86-64, baseline NEON on aarch64, scalar anywhere).
// An unavailable override logs a warning and falls back to auto-detection;
// the resolved backend is reported through the obs gauge `simd.isa` and an
// info-level `simd.dispatch` log line.
#pragma once

#include <string_view>

#include "simd/kernel_table.hpp"

namespace hcc::simd {

/// True iff this binary contains a kernel table for `isa` AND the running
/// CPU can execute it.  Scalar is always available.
bool isa_available(Isa isa) noexcept;

/// The kernel table for a specific ISA, or nullptr when !isa_available(isa).
/// Benchmarks iterate this to compare backends on one host.
const KernelTable* kernels_for(Isa isa) noexcept;

/// Best available ISA by cpuid (ignores HCCMF_SIMD).
Isa detect_best_isa() noexcept;

/// Parses an ISA name ("scalar", "avx2", "avx512", "neon"; case-sensitive).
/// Returns false on unknown names, leaving `out` untouched.
bool parse_isa(std::string_view name, Isa& out) noexcept;

/// The resolution rule, exposed for tests: `env_value` plays the role of
/// getenv("HCCMF_SIMD") (nullptr/empty = no override).  Unknown or
/// unavailable requests fall back to detect_best_isa().
Isa resolve_isa(const char* env_value) noexcept;

/// The process-wide resolved table (see file comment for the rule).
/// The first call resolves and caches; subsequent calls are a load.
const KernelTable& kernels() noexcept;

/// The ISA kernels() resolved to.
Isa active_isa() noexcept;

}  // namespace hcc::simd
