// AVX-512F kernel table (16-wide float lanes).
//
// Uses only the F subset (plus FMA/F16C for tails and conversions) so any
// AVX-512 capable core can run it; vcvtps2ph/vcvtph2ps on zmm registers are
// AVX-512F encodings, covering the paper's footnote-1 "AVX512F" variant
// without the FP16-arithmetic extension.  Compiled with per-file flags
// (-mavx512f -mfma -mf16c -ffp-contract=off); dispatched only after cpuid.
#include "simd/kernel_table.hpp"
#include "simd/scalar_impl.hpp"

#if !defined(__AVX512F__) || !defined(__FMA__) || !defined(__F16C__)
#error "kernels_avx512.cpp must be compiled with -mavx512f -mfma -mf16c"
#endif

#include <immintrin.h>

#include <array>

namespace hcc::simd {
namespace {

float dot_avx512(const float* a, const float* b, std::uint32_t k) noexcept {
  __m512 acc0 = _mm512_setzero_ps();
  __m512 acc1 = _mm512_setzero_ps();
  std::uint32_t f = 0;
  for (; f + 32 <= k; f += 32) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + f), _mm512_loadu_ps(b + f),
                           acc0);
    acc1 = _mm512_fmadd_ps(_mm512_loadu_ps(a + f + 16),
                           _mm512_loadu_ps(b + f + 16), acc1);
  }
  if (f + 16 <= k) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + f), _mm512_loadu_ps(b + f),
                           acc0);
    f += 16;
  }
  float dot = _mm512_reduce_add_ps(_mm512_add_ps(acc0, acc1));
  for (; f < k; ++f) dot += a[f] * b[f];
  return dot;
}

void score_block_avx512(const float* user, const float* q, std::uint32_t k,
                        std::uint32_t n_items, const std::uint8_t* skip_bits,
                        float* scores) noexcept {
  constexpr float kNegInf = -std::numeric_limits<float>::infinity();
  std::uint32_t i = 0;
  for (; i + 8 <= n_items; i += 8) {
    // i is a multiple of 8, so the pass's mask is exactly one bitset byte.
    const unsigned mask = skip_bits != nullptr ? skip_bits[i / 8] : 0u;
    if (mask == 0xffu) {
      for (unsigned j = 0; j < 8; ++j) scores[i + j] = kNegInf;
      continue;
    }
    const float* rows = q + static_cast<std::size_t>(i) * k;
    // One accumulator per item; the user chunk is loaded once and reused
    // across all 8 rows, so Q streams through at one fmadd per element.
    __m512 acc[8];
    for (unsigned j = 0; j < 8; ++j) acc[j] = _mm512_setzero_ps();
    std::uint32_t f = 0;
    for (; f + 16 <= k; f += 16) {
      const __m512 vu = _mm512_loadu_ps(user + f);
      for (unsigned j = 0; j < 8; ++j) {
        acc[j] = _mm512_fmadd_ps(
            vu, _mm512_loadu_ps(rows + static_cast<std::size_t>(j) * k + f),
            acc[j]);
      }
    }
    for (unsigned j = 0; j < 8; ++j) {
      float s = _mm512_reduce_add_ps(acc[j]);
      const float* row = rows + static_cast<std::size_t>(j) * k;
      for (std::uint32_t t = f; t < k; ++t) s += user[t] * row[t];
      scores[i + j] = ((mask >> j) & 1u) != 0 ? kNegInf : s;
    }
  }
  if (i < n_items) {
    detail::scalar_score_block(
        user, q + static_cast<std::size_t>(i) * k, k, n_items - i,
        skip_bits != nullptr ? skip_bits + i / 8 : nullptr, scores + i);
  }
}

void sgd_apply_avx512(float* p, float* q, std::uint32_t k, float err,
                      float lr, float reg_p, float reg_q) noexcept {
  std::uint32_t f = 0;
  if (k >= 16) {  // broadcasts stay behind the gate: no zmm work for tiny k
    const __m512 verr = _mm512_set1_ps(err);
    const __m512 vlr = _mm512_set1_ps(lr);
    const __m512 vreg_p = _mm512_set1_ps(reg_p);
    const __m512 vreg_q = _mm512_set1_ps(reg_q);
    for (; f + 16 <= k; f += 16) {
      const __m512 vp = _mm512_loadu_ps(p + f);
      const __m512 vq = _mm512_loadu_ps(q + f);
      const __m512 gp = _mm512_fnmadd_ps(vreg_p, vp, _mm512_mul_ps(verr, vq));
      const __m512 gq = _mm512_fnmadd_ps(vreg_q, vq, _mm512_mul_ps(verr, vp));
      _mm512_storeu_ps(p + f, _mm512_fmadd_ps(vlr, gp, vp));
      _mm512_storeu_ps(q + f, _mm512_fmadd_ps(vlr, gq, vq));
    }
  }
  if (f < k) detail::scalar_sgd_apply(p + f, q + f, k - f, err, lr, reg_p,
                                      reg_q);
}

float sgd_update_avx512(float* p, float* q, std::uint32_t k, float r,
                        float lr, float reg_p, float reg_q) noexcept {
  const float err = r - dot_avx512(p, q, k);
  sgd_apply_avx512(p, q, k, err, lr, reg_p, reg_q);
  return err;
}

double sum_squares_avx512(const float* v, std::size_t n) noexcept {
  __m512d acc0 = _mm512_setzero_pd();
  __m512d acc1 = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512d d0 = _mm512_cvtps_pd(_mm256_loadu_ps(v + i));
    const __m512d d1 = _mm512_cvtps_pd(_mm256_loadu_ps(v + i + 8));
    acc0 = _mm512_fmadd_pd(d0, d0, acc0);
    acc1 = _mm512_fmadd_pd(d1, d1, acc1);
  }
  double sum = _mm512_reduce_add_pd(_mm512_add_pd(acc0, acc1));
  for (; i < n; ++i) sum += static_cast<double>(v[i]) * v[i];
  return sum;
}

bool all_finite_avx512(const float* v, std::size_t n) noexcept {
  const __m512i exp_mask = _mm512_set1_epi32(0x7f80'0000);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512i bits = _mm512_loadu_si512(v + i);
    const __mmask16 bad = _mm512_cmpeq_epi32_mask(
        _mm512_and_si512(bits, exp_mask), exp_mask);
    if (bad != 0) return false;
  }
  return detail::scalar_all_finite(v + i, n - i);
}

void fp16_encode_avx512(const float* src, util::Half* dst,
                        std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512 v = _mm512_loadu_ps(src + i);
    const __m256i h =
        _mm512_cvtps_ph(v, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), h);
  }
  if (i < n) detail::scalar_fp16_encode(src + i, dst + i, n - i);
}

void fp16_decode_avx512(const util::Half* src, float* dst,
                        std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256i h =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm512_storeu_ps(dst + i, _mm512_cvtph_ps(h));
  }
  if (i < n) detail::scalar_fp16_decode(src + i, dst + i, n - i);
}

// --- sub-FP16 quantization (bit-exact vs the scalar references: exact
// compares/multiplies, RNE integer rounding, no FMA anywhere) ---

float absmax_avx512(const float* v, std::size_t n) noexcept {
  __m512 m = _mm512_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    m = _mm512_max_ps(m, _mm512_abs_ps(_mm512_loadu_ps(v + i)));
  }
  float result = _mm512_reduce_max_ps(m);
  for (; i < n; ++i) {
    const float a = std::fabs(v[i]);
    if (a > result) result = a;
  }
  return result;
}

void ef_delta_avx512(const float* src, const float* ref,
                     const float* residual, float* e, std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512 d =
        _mm512_sub_ps(_mm512_loadu_ps(src + i), _mm512_loadu_ps(ref + i));
    _mm512_storeu_ps(e + i, _mm512_add_ps(d, _mm512_loadu_ps(residual + i)));
  }
  if (i < n) detail::scalar_ef_delta(src + i, ref + i, residual + i, e + i,
                                     n - i);
}

void int8_encode_avx512(const float* e, float inv_scale, std::int8_t* q,
                        std::size_t n) noexcept {
  const __m512 vs = _mm512_set1_ps(inv_scale);
  const __m512i vmax = _mm512_set1_epi32(127);
  const __m512i vmin = _mm512_set1_epi32(-127);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    // vcvtps2dq rounds to nearest-even, matching the scalar lrintf.
    __m512i vi =
        _mm512_cvtps_epi32(_mm512_mul_ps(_mm512_loadu_ps(e + i), vs));
    vi = _mm512_min_epi32(_mm512_max_epi32(vi, vmin), vmax);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(q + i),
                     _mm512_cvtsepi32_epi8(vi));
  }
  if (i < n) detail::scalar_int8_encode(e + i, inv_scale, q + i, n - i);
}

void int8_commit_avx512(const std::int8_t* q, float scale, const float* e,
                        float* ref, float* residual, float* dst,
                        std::size_t n) noexcept {
  const __m512 vscale = _mm512_set1_ps(scale);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512i vi = _mm512_cvtepi8_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(q + i)));
    const __m512 dq = _mm512_mul_ps(_mm512_cvtepi32_ps(vi), vscale);
    const __m512 out = _mm512_add_ps(_mm512_loadu_ps(ref + i), dq);
    _mm512_storeu_ps(residual + i,
                     _mm512_sub_ps(_mm512_loadu_ps(e + i), dq));
    _mm512_storeu_ps(ref + i, out);
    _mm512_storeu_ps(dst + i, out);
  }
  if (i < n) detail::scalar_int8_commit(q + i, scale, e + i, ref + i,
                                        residual + i, dst + i, n - i);
}

/// kSpread[x] has bit b of x at even position 2b — the compare-mask to
/// packed-codes interleave (only AVX-512F is compiled in, so no vpdep).
constexpr auto kSpread = [] {
  std::array<std::uint16_t, 256> t{};
  for (unsigned v = 0; v < 256; ++v) {
    std::uint16_t s = 0;
    for (unsigned b = 0; b < 8; ++b) {
      if (v & (1u << b)) s = static_cast<std::uint16_t>(s | (1u << (2 * b)));
    }
    t[v] = s;
  }
  return t;
}();

inline std::uint32_t spread16(std::uint32_t mask) noexcept {
  return static_cast<std::uint32_t>(kSpread[mask & 0xff]) |
         (static_cast<std::uint32_t>(kSpread[(mask >> 8) & 0xff]) << 16);
}

void two_bit_encode_avx512(const float* e, float threshold,
                           std::uint8_t* packed, std::size_t n) noexcept {
  const __m512 vt = _mm512_set1_ps(threshold);
  const __m512 vnt = _mm512_set1_ps(-threshold);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512 v = _mm512_loadu_ps(e + i);
    const std::uint32_t gt = _mm512_cmp_ps_mask(v, vt, _CMP_GT_OQ);
    const std::uint32_t lt = _mm512_cmp_ps_mask(v, vnt, _CMP_LT_OQ);
    // code j = gt_j | (lt_j << 1): interleave the two masks bitwise.
    const std::uint32_t bits = spread16(gt) | (spread16(lt) << 1);
    packed[i / 4] = static_cast<std::uint8_t>(bits);
    packed[i / 4 + 1] = static_cast<std::uint8_t>(bits >> 8);
    packed[i / 4 + 2] = static_cast<std::uint8_t>(bits >> 16);
    packed[i / 4 + 3] = static_cast<std::uint8_t>(bits >> 24);
  }
  if (i < n) detail::scalar_two_bit_encode(e + i, threshold, packed + i / 4,
                                           n - i);
}

void two_bit_commit_avx512(const std::uint8_t* packed, float threshold,
                           const float* e, float* ref, float* residual,
                           float* dst, std::size_t n) noexcept {
  const __m512 vt = _mm512_set1_ps(threshold);
  const __m512 vnt = _mm512_set1_ps(-threshold);
  const __m512i shifts = _mm512_setr_epi32(0, 2, 4, 6, 8, 10, 12, 14, 16, 18,
                                           20, 22, 24, 26, 28, 30);
  const __m512i three = _mm512_set1_epi32(3);
  const __m512i one = _mm512_set1_epi32(1);
  const __m512i two = _mm512_set1_epi32(2);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const std::uint32_t bits =
        static_cast<std::uint32_t>(packed[i / 4]) |
        (static_cast<std::uint32_t>(packed[i / 4 + 1]) << 8) |
        (static_cast<std::uint32_t>(packed[i / 4 + 2]) << 16) |
        (static_cast<std::uint32_t>(packed[i / 4 + 3]) << 24);
    const __m512i codes = _mm512_and_si512(
        _mm512_srlv_epi32(_mm512_set1_epi32(static_cast<int>(bits)), shifts),
        three);
    __m512 dq = _mm512_setzero_ps();
    dq = _mm512_mask_mov_ps(dq, _mm512_cmpeq_epi32_mask(codes, one), vt);
    dq = _mm512_mask_mov_ps(dq, _mm512_cmpeq_epi32_mask(codes, two), vnt);
    const __m512 out = _mm512_add_ps(_mm512_loadu_ps(ref + i), dq);
    _mm512_storeu_ps(residual + i,
                     _mm512_sub_ps(_mm512_loadu_ps(e + i), dq));
    _mm512_storeu_ps(ref + i, out);
    _mm512_storeu_ps(dst + i, out);
  }
  if (i < n) {
    detail::scalar_two_bit_commit(packed + i / 4, threshold, e + i, ref + i,
                                  residual + i, dst + i, n - i);
  }
}

}  // namespace

const KernelTable& avx512_kernels() noexcept {
  static const KernelTable table{
      Isa::kAvx512,
      "avx512",
      dot_avx512,
      score_block_avx512,
      sgd_update_avx512,
      sgd_apply_avx512,
      sum_squares_avx512,
      all_finite_avx512,
      fp16_encode_avx512,
      fp16_decode_avx512,
      absmax_avx512,
      ef_delta_avx512,
      int8_encode_avx512,
      int8_commit_avx512,
      two_bit_encode_avx512,
      two_bit_commit_avx512,
  };
  return table;
}

}  // namespace hcc::simd
