// AVX-512F kernel table (16-wide float lanes).
//
// Uses only the F subset (plus FMA/F16C for tails and conversions) so any
// AVX-512 capable core can run it; vcvtps2ph/vcvtph2ps on zmm registers are
// AVX-512F encodings, covering the paper's footnote-1 "AVX512F" variant
// without the FP16-arithmetic extension.  Compiled with per-file flags
// (-mavx512f -mfma -mf16c -ffp-contract=off); dispatched only after cpuid.
#include "simd/kernel_table.hpp"
#include "simd/scalar_impl.hpp"

#if !defined(__AVX512F__) || !defined(__FMA__) || !defined(__F16C__)
#error "kernels_avx512.cpp must be compiled with -mavx512f -mfma -mf16c"
#endif

#include <immintrin.h>

namespace hcc::simd {
namespace {

float dot_avx512(const float* a, const float* b, std::uint32_t k) noexcept {
  __m512 acc0 = _mm512_setzero_ps();
  __m512 acc1 = _mm512_setzero_ps();
  std::uint32_t f = 0;
  for (; f + 32 <= k; f += 32) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + f), _mm512_loadu_ps(b + f),
                           acc0);
    acc1 = _mm512_fmadd_ps(_mm512_loadu_ps(a + f + 16),
                           _mm512_loadu_ps(b + f + 16), acc1);
  }
  if (f + 16 <= k) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + f), _mm512_loadu_ps(b + f),
                           acc0);
    f += 16;
  }
  float dot = _mm512_reduce_add_ps(_mm512_add_ps(acc0, acc1));
  for (; f < k; ++f) dot += a[f] * b[f];
  return dot;
}

void sgd_apply_avx512(float* p, float* q, std::uint32_t k, float err,
                      float lr, float reg_p, float reg_q) noexcept {
  std::uint32_t f = 0;
  if (k >= 16) {  // broadcasts stay behind the gate: no zmm work for tiny k
    const __m512 verr = _mm512_set1_ps(err);
    const __m512 vlr = _mm512_set1_ps(lr);
    const __m512 vreg_p = _mm512_set1_ps(reg_p);
    const __m512 vreg_q = _mm512_set1_ps(reg_q);
    for (; f + 16 <= k; f += 16) {
      const __m512 vp = _mm512_loadu_ps(p + f);
      const __m512 vq = _mm512_loadu_ps(q + f);
      const __m512 gp = _mm512_fnmadd_ps(vreg_p, vp, _mm512_mul_ps(verr, vq));
      const __m512 gq = _mm512_fnmadd_ps(vreg_q, vq, _mm512_mul_ps(verr, vp));
      _mm512_storeu_ps(p + f, _mm512_fmadd_ps(vlr, gp, vp));
      _mm512_storeu_ps(q + f, _mm512_fmadd_ps(vlr, gq, vq));
    }
  }
  if (f < k) detail::scalar_sgd_apply(p + f, q + f, k - f, err, lr, reg_p,
                                      reg_q);
}

float sgd_update_avx512(float* p, float* q, std::uint32_t k, float r,
                        float lr, float reg_p, float reg_q) noexcept {
  const float err = r - dot_avx512(p, q, k);
  sgd_apply_avx512(p, q, k, err, lr, reg_p, reg_q);
  return err;
}

double sum_squares_avx512(const float* v, std::size_t n) noexcept {
  __m512d acc0 = _mm512_setzero_pd();
  __m512d acc1 = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512d d0 = _mm512_cvtps_pd(_mm256_loadu_ps(v + i));
    const __m512d d1 = _mm512_cvtps_pd(_mm256_loadu_ps(v + i + 8));
    acc0 = _mm512_fmadd_pd(d0, d0, acc0);
    acc1 = _mm512_fmadd_pd(d1, d1, acc1);
  }
  double sum = _mm512_reduce_add_pd(_mm512_add_pd(acc0, acc1));
  for (; i < n; ++i) sum += static_cast<double>(v[i]) * v[i];
  return sum;
}

bool all_finite_avx512(const float* v, std::size_t n) noexcept {
  const __m512i exp_mask = _mm512_set1_epi32(0x7f80'0000);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512i bits = _mm512_loadu_si512(v + i);
    const __mmask16 bad = _mm512_cmpeq_epi32_mask(
        _mm512_and_si512(bits, exp_mask), exp_mask);
    if (bad != 0) return false;
  }
  return detail::scalar_all_finite(v + i, n - i);
}

void fp16_encode_avx512(const float* src, util::Half* dst,
                        std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512 v = _mm512_loadu_ps(src + i);
    const __m256i h =
        _mm512_cvtps_ph(v, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), h);
  }
  if (i < n) detail::scalar_fp16_encode(src + i, dst + i, n - i);
}

void fp16_decode_avx512(const util::Half* src, float* dst,
                        std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256i h =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm512_storeu_ps(dst + i, _mm512_cvtph_ps(h));
  }
  if (i < n) detail::scalar_fp16_decode(src + i, dst + i, n - i);
}

}  // namespace

const KernelTable& avx512_kernels() noexcept {
  static const KernelTable table{
      Isa::kAvx512,
      "avx512",
      dot_avx512,
      sgd_update_avx512,
      sgd_apply_avx512,
      sum_squares_avx512,
      all_finite_avx512,
      fp16_encode_avx512,
      fp16_decode_avx512,
  };
  return table;
}

}  // namespace hcc::simd
