// Scalar reference implementations of every KernelTable entry.
//
// INTERNAL to src/simd/: included both by kernels_scalar.cpp (where these
// become the scalar table) and by the per-ISA translation units (where they
// handle remainder tails shorter than one vector).  Everything here has
// internal linkage on purpose: each per-ISA TU is compiled with different
// target flags, and letting the linker merge one copy across TUs could hoist
// AVX-encoded code into the portable baseline path.
//
// The per-ISA TUs are compiled with -ffp-contract=off (see CMakeLists.txt)
// so these tails round exactly like the scalar table on every platform; the
// intrinsic paths use explicit FMA and are unaffected.
#pragma once

#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>

#include "util/fp16.hpp"

namespace hcc::simd::detail {

static inline float scalar_dot(const float* a, const float* b,
                               std::uint32_t k) noexcept {
  float dot = 0.0f;
  for (std::uint32_t f = 0; f < k; ++f) dot += a[f] * b[f];
  return dot;
}

static inline void scalar_score_block(const float* user, const float* q,
                                      std::uint32_t k, std::uint32_t n_items,
                                      const std::uint8_t* skip_bits,
                                      float* scores) noexcept {
  for (std::uint32_t i = 0; i < n_items; ++i) {
    if (skip_bits != nullptr && ((skip_bits[i / 8] >> (i % 8)) & 1u) != 0) {
      scores[i] = -std::numeric_limits<float>::infinity();
      continue;
    }
    scores[i] = scalar_dot(user, q + static_cast<std::size_t>(i) * k, k);
  }
}

static inline void scalar_sgd_apply(float* p, float* q, std::uint32_t k,
                                    float err, float lr, float reg_p,
                                    float reg_q) noexcept {
  for (std::uint32_t f = 0; f < k; ++f) {
    const float pf = p[f];
    const float qf = q[f];
    p[f] = pf + lr * (err * qf - reg_p * pf);
    q[f] = qf + lr * (err * pf - reg_q * qf);
  }
}

static inline float scalar_sgd_update(float* p, float* q, std::uint32_t k,
                                      float r, float lr, float reg_p,
                                      float reg_q) noexcept {
  const float err = r - scalar_dot(p, q, k);
  scalar_sgd_apply(p, q, k, err, lr, reg_p, reg_q);
  return err;
}

static inline double scalar_sum_squares(const float* v,
                                        std::size_t n) noexcept {
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += static_cast<double>(v[i]) * v[i];
  }
  return sum;
}

/// Finite iff the exponent field is not all-ones.  Pure integer test: safe
/// under -ffast-math (where isnan/isinf and NaN-producing arithmetic can be
/// folded away) and vectorizable.
static inline bool scalar_is_finite_bits(float v) noexcept {
  const std::uint32_t bits = std::bit_cast<std::uint32_t>(v);
  return (bits & 0x7f80'0000u) != 0x7f80'0000u;
}

static inline bool scalar_all_finite(const float* v, std::size_t n) noexcept {
  // Branch-free OR-fold of the exponent test so the loop vectorizes.
  std::uint32_t bad = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t bits = std::bit_cast<std::uint32_t>(v[i]);
    bad |= static_cast<std::uint32_t>((bits & 0x7f80'0000u) == 0x7f80'0000u);
  }
  return bad == 0;
}

static inline void scalar_fp16_encode(const float* src, util::Half* dst,
                                      std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) dst[i] = util::float_to_fp16(src[i]);
}

static inline void scalar_fp16_decode(const util::Half* src, float* dst,
                                      std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) dst[i] = util::fp16_to_float(src[i]);
}

// --- sub-FP16 quantization references (see kernel_table.hpp's contract:
// the vector kernels must match these BIT-EXACTLY, so every operation here
// is individually exact-roundable and FMA-free) ---

static inline float scalar_absmax(const float* v, std::size_t n) noexcept {
  float m = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    const float a = std::fabs(v[i]);
    if (a > m) m = a;
  }
  return m;
}

static inline void scalar_ef_delta(const float* src, const float* ref,
                                   const float* residual, float* e,
                                   std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    e[i] = (src[i] - ref[i]) + residual[i];
  }
}

static inline void scalar_int8_encode(const float* e, float inv_scale,
                                      std::int8_t* q, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    // lrintf under the default FP environment is round-to-nearest-even,
    // exactly what vcvtps2dq does.
    long v = std::lrintf(e[i] * inv_scale);
    if (v > 127) v = 127;
    if (v < -127) v = -127;
    q[i] = static_cast<std::int8_t>(v);
  }
}

static inline void scalar_int8_commit(const std::int8_t* q, float scale,
                                      const float* e, float* ref,
                                      float* residual, float* dst,
                                      std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    const float dq = static_cast<float>(q[i]) * scale;
    const float out = ref[i] + dq;
    residual[i] = e[i] - dq;
    ref[i] = out;
    dst[i] = out;
  }
}

static inline std::uint8_t scalar_two_bit_code(float e,
                                               float threshold) noexcept {
  if (e > threshold) return 1;
  if (e < -threshold) return 2;
  return 0;
}

static inline void scalar_two_bit_encode(const float* e, float threshold,
                                         std::uint8_t* packed,
                                         std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    packed[i / 4] = static_cast<std::uint8_t>(
        scalar_two_bit_code(e[i], threshold) |
        (scalar_two_bit_code(e[i + 1], threshold) << 2) |
        (scalar_two_bit_code(e[i + 2], threshold) << 4) |
        (scalar_two_bit_code(e[i + 3], threshold) << 6));
  }
  if (i < n) {
    std::uint8_t b = 0;
    for (std::size_t j = 0; i + j < n; ++j) {
      b |= static_cast<std::uint8_t>(scalar_two_bit_code(e[i + j], threshold)
                                     << (2 * j));
    }
    packed[i / 4] = b;
  }
}

static inline void scalar_two_bit_commit(const std::uint8_t* packed,
                                         float threshold, const float* e,
                                         float* ref, float* residual,
                                         float* dst, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    const unsigned code = (packed[i / 4] >> (2 * (i % 4))) & 3u;
    const float dq =
        code == 1 ? threshold : (code == 2 ? -threshold : 0.0f);
    const float out = ref[i] + dq;
    residual[i] = e[i] - dq;
    ref[i] = out;
    dst[i] = out;
  }
}

}  // namespace hcc::simd::detail
