// Scalar reference implementations of every KernelTable entry.
//
// INTERNAL to src/simd/: included both by kernels_scalar.cpp (where these
// become the scalar table) and by the per-ISA translation units (where they
// handle remainder tails shorter than one vector).  Everything here has
// internal linkage on purpose: each per-ISA TU is compiled with different
// target flags, and letting the linker merge one copy across TUs could hoist
// AVX-encoded code into the portable baseline path.
//
// The per-ISA TUs are compiled with -ffp-contract=off (see CMakeLists.txt)
// so these tails round exactly like the scalar table on every platform; the
// intrinsic paths use explicit FMA and are unaffected.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

#include "util/fp16.hpp"

namespace hcc::simd::detail {

static inline float scalar_dot(const float* a, const float* b,
                               std::uint32_t k) noexcept {
  float dot = 0.0f;
  for (std::uint32_t f = 0; f < k; ++f) dot += a[f] * b[f];
  return dot;
}

static inline void scalar_sgd_apply(float* p, float* q, std::uint32_t k,
                                    float err, float lr, float reg_p,
                                    float reg_q) noexcept {
  for (std::uint32_t f = 0; f < k; ++f) {
    const float pf = p[f];
    const float qf = q[f];
    p[f] = pf + lr * (err * qf - reg_p * pf);
    q[f] = qf + lr * (err * pf - reg_q * qf);
  }
}

static inline float scalar_sgd_update(float* p, float* q, std::uint32_t k,
                                      float r, float lr, float reg_p,
                                      float reg_q) noexcept {
  const float err = r - scalar_dot(p, q, k);
  scalar_sgd_apply(p, q, k, err, lr, reg_p, reg_q);
  return err;
}

static inline double scalar_sum_squares(const float* v,
                                        std::size_t n) noexcept {
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += static_cast<double>(v[i]) * v[i];
  }
  return sum;
}

/// Finite iff the exponent field is not all-ones.  Pure integer test: safe
/// under -ffast-math (where isnan/isinf and NaN-producing arithmetic can be
/// folded away) and vectorizable.
static inline bool scalar_is_finite_bits(float v) noexcept {
  const std::uint32_t bits = std::bit_cast<std::uint32_t>(v);
  return (bits & 0x7f80'0000u) != 0x7f80'0000u;
}

static inline bool scalar_all_finite(const float* v, std::size_t n) noexcept {
  // Branch-free OR-fold of the exponent test so the loop vectorizes.
  std::uint32_t bad = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t bits = std::bit_cast<std::uint32_t>(v[i]);
    bad |= static_cast<std::uint32_t>((bits & 0x7f80'0000u) == 0x7f80'0000u);
  }
  return bad == 0;
}

static inline void scalar_fp16_encode(const float* src, util::Half* dst,
                                      std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) dst[i] = util::float_to_fp16(src[i]);
}

static inline void scalar_fp16_decode(const util::Half* src, float* dst,
                                      std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) dst[i] = util::fp16_to_float(src[i]);
}

}  // namespace hcc::simd::detail
