#include "simd/dispatch.hpp"

#include <cstdlib>

#include "obs/metrics.hpp"
#include "util/log.hpp"

namespace hcc::simd {

// Per-ISA table getters, each defined in its own translation unit compiled
// with that ISA's flags.  CMake defines HCCMF_SIMD_HAS_* for exactly the
// units it compiled in (see src/simd/CMakeLists.txt).
const KernelTable& scalar_kernels() noexcept;
#if defined(HCCMF_SIMD_HAS_AVX2)
const KernelTable& avx2_kernels() noexcept;
#endif
#if defined(HCCMF_SIMD_HAS_AVX512)
const KernelTable& avx512_kernels() noexcept;
#endif
#if defined(HCCMF_SIMD_HAS_NEON)
const KernelTable& neon_kernels() noexcept;
#endif

namespace {

/// True iff the running CPU can execute `isa` (ignores what was compiled
/// in).  On GCC/Clang x86 the cpu_supports builtins also verify the OS has
/// enabled the corresponding register state (XGETBV), so a positive answer
/// means the instructions are actually usable.
bool cpu_supports(Isa isa) noexcept {
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kNeon:
#if defined(__aarch64__)
      return true;  // NEON is ARMv8-A baseline
#else
      return false;
#endif
    case Isa::kAvx2:
    case Isa::kAvx512:
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
      __builtin_cpu_init();
      if (isa == Isa::kAvx2) {
        return __builtin_cpu_supports("avx2") &&
               __builtin_cpu_supports("fma") &&
               __builtin_cpu_supports("f16c");
      }
      return __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("fma") && __builtin_cpu_supports("f16c");
#else
      return false;
#endif
  }
  return false;
}

}  // namespace

const char* isa_name(Isa isa) noexcept {
  switch (isa) {
    case Isa::kScalar: return "scalar";
    case Isa::kNeon: return "neon";
    case Isa::kAvx2: return "avx2";
    case Isa::kAvx512: return "avx512";
  }
  return "unknown";
}

const KernelTable* kernels_for(Isa isa) noexcept {
  if (!cpu_supports(isa)) return nullptr;
  switch (isa) {
    case Isa::kScalar:
      return &scalar_kernels();
    case Isa::kNeon:
#if defined(HCCMF_SIMD_HAS_NEON)
      return &neon_kernels();
#else
      return nullptr;
#endif
    case Isa::kAvx2:
#if defined(HCCMF_SIMD_HAS_AVX2)
      return &avx2_kernels();
#else
      return nullptr;
#endif
    case Isa::kAvx512:
#if defined(HCCMF_SIMD_HAS_AVX512)
      return &avx512_kernels();
#else
      return nullptr;
#endif
  }
  return nullptr;
}

bool isa_available(Isa isa) noexcept { return kernels_for(isa) != nullptr; }

Isa detect_best_isa() noexcept {
  for (const Isa isa : {Isa::kAvx512, Isa::kAvx2, Isa::kNeon}) {
    if (isa_available(isa)) return isa;
  }
  return Isa::kScalar;
}

bool parse_isa(std::string_view name, Isa& out) noexcept {
  for (const Isa isa :
       {Isa::kScalar, Isa::kNeon, Isa::kAvx2, Isa::kAvx512}) {
    if (name == isa_name(isa)) {
      out = isa;
      return true;
    }
  }
  return false;
}

Isa resolve_isa(const char* env_value) noexcept {
  if (env_value != nullptr && *env_value != '\0') {
    Isa requested = Isa::kScalar;
    if (!parse_isa(env_value, requested)) {
      util::log_kv(util::LogLevel::kWarn, "simd.dispatch.bad_override",
                   {util::kv("requested", env_value),
                    util::kv("fallback", isa_name(detect_best_isa()))});
    } else if (!isa_available(requested)) {
      util::log_kv(util::LogLevel::kWarn, "simd.dispatch.unavailable",
                   {util::kv("requested", env_value),
                    util::kv("fallback", isa_name(detect_best_isa()))});
    } else {
      return requested;
    }
  }
  return detect_best_isa();
}

const KernelTable& kernels() noexcept {
  static const KernelTable* const resolved = []() noexcept {
    const Isa isa = resolve_isa(std::getenv("HCCMF_SIMD"));
    const KernelTable* table = kernels_for(isa);
    if (table == nullptr) table = &scalar_kernels();
    // Report the resolved backend; never let observability failures take
    // down dispatch (kernels() is on noexcept hot paths).
    try {
      obs::registry().gauge("simd.isa").set(
          static_cast<double>(static_cast<int>(table->isa)));
      util::log_kv(util::LogLevel::kInfo, "simd.dispatch",
                   {util::kv("isa", table->name),
                    util::kv("detected", isa_name(detect_best_isa()))});
    } catch (...) {
    }
    return table;
  }();
  return *resolved;
}

Isa active_isa() noexcept { return kernels().isa; }

}  // namespace hcc::simd
