// The per-ISA kernel table: one function pointer per hot loop.
//
// The paper's CPU-side numbers come from hand-vectorized kernels (footnote 1:
// SSE/AVX/AVX512F vectorization of the FPSGD update kernel, 1.8-2.3x; Section
// 3.4's FP16 wire codec "with AVX intrinsics").  Each supported ISA provides
// one KernelTable, compiled in its own translation unit with per-file target
// flags so the rest of the binary stays portable; simd::kernels() resolves
// the best table once at startup (see dispatch.hpp).
//
// Contract for every entry:
//  - identical semantics to the scalar reference up to floating-point
//    reassociation (tests bound the divergence in ULPs), except the FP16
//    codec entries, which must match the scalar codec in util/fp16.hpp
//    BIT-EXACTLY (round-to-nearest-even, gradual underflow, overflow to
//    +/-inf, NaN payload top bits preserved, quiet bit forced);
//  - no alignment requirement on any pointer (unaligned loads/stores);
//  - remainder tails handled internally: every length n / rank k is legal.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/fp16.hpp"

namespace hcc::simd {

/// Instruction-set architectures a kernel table can target, ordered by
/// preference within their platform.  The numeric values are stable: the
/// obs gauge `simd.isa` reports them (0=scalar, 1=neon, 2=avx2, 3=avx512).
enum class Isa : int {
  kScalar = 0,
  kNeon = 1,
  kAvx2 = 2,
  kAvx512 = 3,
};

/// Lower-case stable name ("scalar", "neon", "avx2", "avx512").
const char* isa_name(Isa isa) noexcept;

/// One resolved backend: every hot loop the library dispatches.
struct KernelTable {
  Isa isa = Isa::kScalar;
  /// Same string as isa_name(isa); kept in the table so call sites can
  /// report the backend without another lookup.
  const char* name = "scalar";

  /// dot(a, b) over k floats.
  float (*dot)(const float* a, const float* b, std::uint32_t k) noexcept =
      nullptr;

  /// Batched serving scorer: scores[i] = dot(user, q + i*k) for n_items
  /// contiguous k-float rows of Q (the serve/ top-K hot loop).  `skip_bits`
  /// is an optional bitset (bit i%8 of skip_bits[i/8]; nullptr = none):
  /// masked items are written as -inf without being scored, which fuses the
  /// seen-item filter into the scan.  Per-item sums follow the same
  /// reassociation latitude as `dot` (tests bound the divergence in ULPs);
  /// the vector backends score 8 items per pass with one accumulator each
  /// so the user row is loaded once per feature chunk.
  void (*score_block)(const float* user, const float* q, std::uint32_t k,
                      std::uint32_t n_items, const std::uint8_t* skip_bits,
                      float* scores) noexcept = nullptr;

  /// One SGD step (the Figure 1 recurrence; see mf::sgd_update).  Returns
  /// the pre-update error r - <p, q>.
  float (*sgd_update)(float* p, float* q, std::uint32_t k, float r, float lr,
                      float reg_p, float reg_q) noexcept = nullptr;

  /// The factor-update half with a caller-supplied error (biased models).
  void (*sgd_update_with_error)(float* p, float* q, std::uint32_t k,
                                float err, float lr, float reg_p,
                                float reg_q) noexcept = nullptr;

  /// sum(v[i]^2) accumulated in double (objective's regularizer norms).
  double (*sum_squares)(const float* v, std::size_t n) noexcept = nullptr;

  /// True iff every value is finite.  Implemented with integer exponent
  /// tests, so it stays correct under -ffast-math-style flags (a NaN/Inf
  /// arithmetic trick would be UB-adjacent there).
  bool (*all_finite)(const float* v, std::size_t n) noexcept = nullptr;

  /// Batch binary32 -> binary16, bit-exact vs util::float_to_fp16.
  void (*fp16_encode)(const float* src, util::Half* dst,
                      std::size_t n) noexcept = nullptr;

  /// Batch binary16 -> binary32, bit-exact vs util::fp16_to_float.
  void (*fp16_decode)(const util::Half* src, float* dst,
                      std::size_t n) noexcept = nullptr;

  // --- sub-FP16 quantization (error-feedback codecs, comm/codec.hpp) ---
  // Bit-exactness contract for this group: every entry must match the
  // scalar reference EXACTLY (not just within ULPs).  The comparisons and
  // multiplies below are individually exact-roundable, the integer rounding
  // is round-to-nearest-even on both paths (std::lrintf under the default
  // rounding mode == vcvtps2dq), and none of them may use FMA — so the
  // scalar and vector kernels produce identical wire bytes and identical
  // residual state, which the cross-ISA parity tests assert.

  /// max(|v[i]|) over n floats; 0 for n == 0.  The quantizer's scale probe.
  float (*absmax)(const float* v, std::size_t n) noexcept = nullptr;

  /// e[i] = (src[i] - ref[i]) + residual[i]: the error-feedback delta the
  /// quantizers encode (evaluated in exactly that association).
  void (*ef_delta)(const float* src, const float* ref, const float* residual,
                   float* e, std::size_t n) noexcept = nullptr;

  /// q[i] = clamp(rne(e[i] * inv_scale), -127, 127).
  void (*int8_encode)(const float* e, float inv_scale, std::int8_t* q,
                      std::size_t n) noexcept = nullptr;

  /// The int8 decode-commit: dq = q[i]*scale; dst[i] = ref[i] + dq;
  /// residual[i] = e[i] - dq; ref[i] = dst[i].  `e` is the encoder-side
  /// delta scratch (encoder and decoder share one codec instance here).
  void (*int8_commit)(const std::int8_t* q, float scale, const float* e,
                      float* ref, float* residual, float* dst,
                      std::size_t n) noexcept = nullptr;

  /// 2-bit threshold codes, 4 per byte, little-endian within the byte
  /// (element j of a byte occupies bits [2j, 2j+2)): 0 -> 0, 1 -> +t,
  /// 2 -> -t, where code(e) = e > t ? 1 : (e < -t ? 2 : 0).  The tail of a
  /// partial byte is zero-filled.
  void (*two_bit_encode)(const float* e, float threshold, std::uint8_t* packed,
                         std::size_t n) noexcept = nullptr;

  /// The 2-bit decode-commit (same state update as int8_commit with
  /// dq in {-t, 0, +t}).
  void (*two_bit_commit)(const std::uint8_t* packed, float threshold,
                         const float* e, float* ref, float* residual,
                         float* dst, std::size_t n) noexcept = nullptr;
};

}  // namespace hcc::simd
