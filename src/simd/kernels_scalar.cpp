// The scalar kernel table: the portable baseline and the conformance oracle
// every vector backend is tested against.  Compiled with the project's
// default flags only — no -m options — so it runs on any host the binary
// targets.
#include "simd/kernel_table.hpp"
#include "simd/scalar_impl.hpp"

namespace hcc::simd {

const KernelTable& scalar_kernels() noexcept {
  static const KernelTable table{
      Isa::kScalar,
      "scalar",
      detail::scalar_dot,
      detail::scalar_score_block,
      detail::scalar_sgd_update,
      detail::scalar_sgd_apply,
      detail::scalar_sum_squares,
      detail::scalar_all_finite,
      detail::scalar_fp16_encode,
      detail::scalar_fp16_decode,
      detail::scalar_absmax,
      detail::scalar_ef_delta,
      detail::scalar_int8_encode,
      detail::scalar_int8_commit,
      detail::scalar_two_bit_encode,
      detail::scalar_two_bit_commit,
  };
  return table;
}

}  // namespace hcc::simd
