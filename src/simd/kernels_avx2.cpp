// AVX2 + FMA + F16C kernel table (8-wide float lanes).
//
// Compiled with per-file flags (-mavx2 -mfma -mf16c -ffp-contract=off); the
// dispatcher only hands this table out after cpuid confirms all three
// features, so the intrinsics below are always legal when reached.  All
// loads/stores are unaligned-safe; remainder tails fall through to the
// scalar reference implementations.
#include "simd/kernel_table.hpp"
#include "simd/scalar_impl.hpp"

#if !defined(__AVX2__) || !defined(__FMA__) || !defined(__F16C__)
#error "kernels_avx2.cpp must be compiled with -mavx2 -mfma -mf16c"
#endif

#include <immintrin.h>

#include <array>

namespace hcc::simd {
namespace {

inline float hsum256(__m256 v) noexcept {
  __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  lo = _mm_add_ps(lo, hi);
  lo = _mm_add_ps(lo, _mm_movehl_ps(lo, lo));
  lo = _mm_add_ss(lo, _mm_shuffle_ps(lo, lo, 1));
  return _mm_cvtss_f32(lo);
}

inline double hsum256d(__m256d v) noexcept {
  __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  lo = _mm_add_pd(lo, hi);
  lo = _mm_add_sd(lo, _mm_unpackhi_pd(lo, lo));
  return _mm_cvtsd_f64(lo);
}

float dot_avx2(const float* a, const float* b, std::uint32_t k) noexcept {
  // Two independent accumulator chains hide the 4-5 cycle FMA latency.
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  std::uint32_t f = 0;
  for (; f + 16 <= k; f += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + f), _mm256_loadu_ps(b + f),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + f + 8),
                           _mm256_loadu_ps(b + f + 8), acc1);
  }
  if (f + 8 <= k) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + f), _mm256_loadu_ps(b + f),
                           acc0);
    f += 8;
  }
  float dot = hsum256(_mm256_add_ps(acc0, acc1));
  for (; f < k; ++f) dot += a[f] * b[f];
  return dot;
}

void score_block_avx2(const float* user, const float* q, std::uint32_t k,
                      std::uint32_t n_items, const std::uint8_t* skip_bits,
                      float* scores) noexcept {
  constexpr float kNegInf = -std::numeric_limits<float>::infinity();
  std::uint32_t i = 0;
  for (; i + 8 <= n_items; i += 8) {
    // i is a multiple of 8, so the pass's mask is exactly one bitset byte.
    const unsigned mask = skip_bits != nullptr ? skip_bits[i / 8] : 0u;
    if (mask == 0xffu) {
      for (unsigned j = 0; j < 8; ++j) scores[i + j] = kNegInf;
      continue;
    }
    const float* rows = q + static_cast<std::size_t>(i) * k;
    // One accumulator per item; the user chunk is loaded once and reused
    // across all 8 rows, so Q streams through at one fmadd per element.
    __m256 acc[8];
    for (unsigned j = 0; j < 8; ++j) acc[j] = _mm256_setzero_ps();
    std::uint32_t f = 0;
    for (; f + 8 <= k; f += 8) {
      const __m256 vu = _mm256_loadu_ps(user + f);
      for (unsigned j = 0; j < 8; ++j) {
        acc[j] = _mm256_fmadd_ps(
            vu, _mm256_loadu_ps(rows + static_cast<std::size_t>(j) * k + f),
            acc[j]);
      }
    }
    for (unsigned j = 0; j < 8; ++j) {
      float s = hsum256(acc[j]);
      const float* row = rows + static_cast<std::size_t>(j) * k;
      for (std::uint32_t t = f; t < k; ++t) s += user[t] * row[t];
      scores[i + j] = ((mask >> j) & 1u) != 0 ? kNegInf : s;
    }
  }
  if (i < n_items) {
    detail::scalar_score_block(
        user, q + static_cast<std::size_t>(i) * k, k, n_items - i,
        skip_bits != nullptr ? skip_bits + i / 8 : nullptr, scores + i);
  }
}

void sgd_apply_avx2(float* p, float* q, std::uint32_t k, float err, float lr,
                    float reg_p, float reg_q) noexcept {
  const __m256 verr = _mm256_set1_ps(err);
  const __m256 vlr = _mm256_set1_ps(lr);
  const __m256 vreg_p = _mm256_set1_ps(reg_p);
  const __m256 vreg_q = _mm256_set1_ps(reg_q);
  std::uint32_t f = 0;
  for (; f + 8 <= k; f += 8) {
    const __m256 vp = _mm256_loadu_ps(p + f);
    const __m256 vq = _mm256_loadu_ps(q + f);
    // g_p = err*q - reg_p*p ; g_q = err*p_old - reg_q*q
    const __m256 gp = _mm256_fnmadd_ps(vreg_p, vp, _mm256_mul_ps(verr, vq));
    const __m256 gq = _mm256_fnmadd_ps(vreg_q, vq, _mm256_mul_ps(verr, vp));
    _mm256_storeu_ps(p + f, _mm256_fmadd_ps(vlr, gp, vp));
    _mm256_storeu_ps(q + f, _mm256_fmadd_ps(vlr, gq, vq));
  }
  if (f < k) detail::scalar_sgd_apply(p + f, q + f, k - f, err, lr, reg_p,
                                      reg_q);
}

float sgd_update_avx2(float* p, float* q, std::uint32_t k, float r, float lr,
                      float reg_p, float reg_q) noexcept {
  const float err = r - dot_avx2(p, q, k);
  sgd_apply_avx2(p, q, k, err, lr, reg_p, reg_q);
  return err;
}

double sum_squares_avx2(const float* v, std::size_t n) noexcept {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d d0 = _mm256_cvtps_pd(_mm_loadu_ps(v + i));
    const __m256d d1 = _mm256_cvtps_pd(_mm_loadu_ps(v + i + 4));
    acc0 = _mm256_fmadd_pd(d0, d0, acc0);
    acc1 = _mm256_fmadd_pd(d1, d1, acc1);
  }
  double sum = hsum256d(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) sum += static_cast<double>(v[i]) * v[i];
  return sum;
}

bool all_finite_avx2(const float* v, std::size_t n) noexcept {
  const __m256i exp_mask = _mm256_set1_epi32(0x7f80'0000);
  __m256i bad = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i bits =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    const __m256i exp = _mm256_and_si256(bits, exp_mask);
    bad = _mm256_or_si256(bad, _mm256_cmpeq_epi32(exp, exp_mask));
  }
  if (!_mm256_testz_si256(bad, bad)) return false;
  return detail::scalar_all_finite(v + i, n - i);
}

void fp16_encode_avx2(const float* src, util::Half* dst,
                      std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(src + i);
    const __m128i h =
        _mm256_cvtps_ph(v, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), h);
  }
  if (i < n) detail::scalar_fp16_encode(src + i, dst + i, n - i);
}

void fp16_decode_avx2(const util::Half* src, float* dst,
                      std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i h =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm256_storeu_ps(dst + i, _mm256_cvtph_ps(h));
  }
  if (i < n) detail::scalar_fp16_decode(src + i, dst + i, n - i);
}

// --- sub-FP16 quantization (bit-exact vs the scalar references: exact
// compares/multiplies, RNE integer rounding, no FMA anywhere) ---

float absmax_avx2(const float* v, std::size_t n) noexcept {
  const __m256 sign = _mm256_set1_ps(-0.0f);
  __m256 m = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    m = _mm256_max_ps(m, _mm256_andnot_ps(sign, _mm256_loadu_ps(v + i)));
  }
  __m128 lo = _mm_max_ps(_mm256_castps256_ps128(m),
                         _mm256_extractf128_ps(m, 1));
  lo = _mm_max_ps(lo, _mm_movehl_ps(lo, lo));
  lo = _mm_max_ss(lo, _mm_shuffle_ps(lo, lo, 1));
  float result = _mm_cvtss_f32(lo);
  for (; i < n; ++i) {
    const float a = std::fabs(v[i]);
    if (a > result) result = a;
  }
  return result;
}

void ef_delta_avx2(const float* src, const float* ref, const float* residual,
                   float* e, std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 d =
        _mm256_sub_ps(_mm256_loadu_ps(src + i), _mm256_loadu_ps(ref + i));
    _mm256_storeu_ps(e + i, _mm256_add_ps(d, _mm256_loadu_ps(residual + i)));
  }
  if (i < n) detail::scalar_ef_delta(src + i, ref + i, residual + i, e + i,
                                     n - i);
}

void int8_encode_avx2(const float* e, float inv_scale, std::int8_t* q,
                      std::size_t n) noexcept {
  const __m256 vs = _mm256_set1_ps(inv_scale);
  const __m256i vmax = _mm256_set1_epi32(127);
  const __m256i vmin = _mm256_set1_epi32(-127);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    // vcvtps2dq rounds to nearest-even, matching the scalar lrintf.
    __m256i vi =
        _mm256_cvtps_epi32(_mm256_mul_ps(_mm256_loadu_ps(e + i), vs));
    vi = _mm256_min_epi32(_mm256_max_epi32(vi, vmin), vmax);
    const __m128i w = _mm_packs_epi32(_mm256_castsi256_si128(vi),
                                      _mm256_extracti128_si256(vi, 1));
    _mm_storel_epi64(reinterpret_cast<__m128i*>(q + i),
                     _mm_packs_epi16(w, w));
  }
  if (i < n) detail::scalar_int8_encode(e + i, inv_scale, q + i, n - i);
}

void int8_commit_avx2(const std::int8_t* q, float scale, const float* e,
                      float* ref, float* residual, float* dst,
                      std::size_t n) noexcept {
  const __m256 vscale = _mm256_set1_ps(scale);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i vi = _mm256_cvtepi8_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(q + i)));
    const __m256 dq = _mm256_mul_ps(_mm256_cvtepi32_ps(vi), vscale);
    const __m256 out = _mm256_add_ps(_mm256_loadu_ps(ref + i), dq);
    _mm256_storeu_ps(residual + i,
                     _mm256_sub_ps(_mm256_loadu_ps(e + i), dq));
    _mm256_storeu_ps(ref + i, out);
    _mm256_storeu_ps(dst + i, out);
  }
  if (i < n) detail::scalar_int8_commit(q + i, scale, e + i, ref + i,
                                        residual + i, dst + i, n - i);
}

/// kSpread[x] has bit b of x at even position 2b — the movemask-to-codes
/// interleave (this TU has no BMI2/PDEP; a 256-entry table beats 8 scalar
/// shifts anyway).
constexpr auto kSpread = [] {
  std::array<std::uint16_t, 256> t{};
  for (unsigned v = 0; v < 256; ++v) {
    std::uint16_t s = 0;
    for (unsigned b = 0; b < 8; ++b) {
      if (v & (1u << b)) s = static_cast<std::uint16_t>(s | (1u << (2 * b)));
    }
    t[v] = s;
  }
  return t;
}();

void two_bit_encode_avx2(const float* e, float threshold,
                         std::uint8_t* packed, std::size_t n) noexcept {
  const __m256 vt = _mm256_set1_ps(threshold);
  const __m256 vnt = _mm256_set1_ps(-threshold);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(e + i);
    const unsigned gt = static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_cmp_ps(v, vt, _CMP_GT_OQ)));
    const unsigned lt = static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_cmp_ps(v, vnt, _CMP_LT_OQ)));
    // code j = gt_j | (lt_j << 1): interleave the two masks bitwise.
    const std::uint16_t bits = static_cast<std::uint16_t>(
        kSpread[gt] | static_cast<std::uint16_t>(kSpread[lt] << 1));
    packed[i / 4] = static_cast<std::uint8_t>(bits);
    packed[i / 4 + 1] = static_cast<std::uint8_t>(bits >> 8);
  }
  if (i < n) detail::scalar_two_bit_encode(e + i, threshold, packed + i / 4,
                                           n - i);
}

void two_bit_commit_avx2(const std::uint8_t* packed, float threshold,
                         const float* e, float* ref, float* residual,
                         float* dst, std::size_t n) noexcept {
  const __m256 vt = _mm256_set1_ps(threshold);
  const __m256 vnt = _mm256_set1_ps(-threshold);
  const __m256i shifts = _mm256_setr_epi32(0, 2, 4, 6, 8, 10, 12, 14);
  const __m256i three = _mm256_set1_epi32(3);
  const __m256i one = _mm256_set1_epi32(1);
  const __m256i two = _mm256_set1_epi32(2);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const int bits = packed[i / 4] | (packed[i / 4 + 1] << 8);
    const __m256i codes = _mm256_and_si256(
        _mm256_srlv_epi32(_mm256_set1_epi32(bits), shifts), three);
    const __m256 pos =
        _mm256_castsi256_ps(_mm256_cmpeq_epi32(codes, one));
    const __m256 neg =
        _mm256_castsi256_ps(_mm256_cmpeq_epi32(codes, two));
    const __m256 dq =
        _mm256_or_ps(_mm256_and_ps(pos, vt), _mm256_and_ps(neg, vnt));
    const __m256 out = _mm256_add_ps(_mm256_loadu_ps(ref + i), dq);
    _mm256_storeu_ps(residual + i,
                     _mm256_sub_ps(_mm256_loadu_ps(e + i), dq));
    _mm256_storeu_ps(ref + i, out);
    _mm256_storeu_ps(dst + i, out);
  }
  if (i < n) {
    detail::scalar_two_bit_commit(packed + i / 4, threshold, e + i, ref + i,
                                  residual + i, dst + i, n - i);
  }
}

}  // namespace

const KernelTable& avx2_kernels() noexcept {
  static const KernelTable table{
      Isa::kAvx2,
      "avx2",
      dot_avx2,
      score_block_avx2,
      sgd_update_avx2,
      sgd_apply_avx2,
      sum_squares_avx2,
      all_finite_avx2,
      fp16_encode_avx2,
      fp16_decode_avx2,
      absmax_avx2,
      ef_delta_avx2,
      int8_encode_avx2,
      int8_commit_avx2,
      two_bit_encode_avx2,
      two_bit_commit_avx2,
  };
  return table;
}

}  // namespace hcc::simd
