#include "cluster/cluster.hpp"

#include "sim/perf_model.hpp"

namespace hcc::cluster {

namespace {

// The presets are the sim layer's calibrated link table (one source of
// truth — the functional transport reads the same constants).
InterconnectSpec from_link(const sim::LinkSpec& link) {
  return InterconnectSpec{link.name, link.bandwidth_gbs, link.latency_s};
}

}  // namespace

InterconnectSpec infiniband_hdr() { return from_link(sim::link_ib_hdr()); }

InterconnectSpec ethernet_100g() { return from_link(sim::link_100gbe()); }

InterconnectSpec ethernet_10g() { return from_link(sim::link_10gbe()); }

double ClusterSpec::ideal_update_rate(const sim::DatasetShape& shape) const {
  double total = 0.0;
  for (const auto& node : nodes) {
    total += node.platform.ideal_update_rate(shape);
  }
  return total;
}

std::size_t ClusterSpec::total_workers() const {
  std::size_t total = 0;
  for (const auto& node : nodes) total += node.platform.workers.size();
  return total;
}

ClusterSpec workstation_cluster(std::size_t node_count,
                                const InterconnectSpec& network) {
  ClusterSpec cluster;
  cluster.name = std::to_string(node_count) + "x-workstation-" + network.name;
  cluster.network = network;
  cluster.global_server = sim::ServerSpec{};
  for (std::size_t n = 0; n < node_count; ++n) {
    NodeSpec node;
    node.name = "node" + std::to_string(n);
    node.platform = sim::paper_workstation_hetero();
    cluster.nodes.push_back(std::move(node));
  }
  return cluster;
}

}  // namespace hcc::cluster
