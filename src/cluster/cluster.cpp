#include "cluster/cluster.hpp"

#include "sim/perf_model.hpp"

namespace hcc::cluster {

InterconnectSpec infiniband_hdr() {
  return InterconnectSpec{"IB-HDR", 25.0, 1e-6};
}

InterconnectSpec ethernet_100g() {
  return InterconnectSpec{"100GbE", 12.5, 10e-6};
}

InterconnectSpec ethernet_10g() {
  return InterconnectSpec{"10GbE", 1.25, 50e-6};
}

double ClusterSpec::ideal_update_rate(const sim::DatasetShape& shape) const {
  double total = 0.0;
  for (const auto& node : nodes) {
    total += node.platform.ideal_update_rate(shape);
  }
  return total;
}

std::size_t ClusterSpec::total_workers() const {
  std::size_t total = 0;
  for (const auto& node : nodes) total += node.platform.workers.size();
  return total;
}

ClusterSpec workstation_cluster(std::size_t node_count,
                                const InterconnectSpec& network) {
  ClusterSpec cluster;
  cluster.name = std::to_string(node_count) + "x-workstation-" + network.name;
  cluster.network = network;
  cluster.global_server = sim::ServerSpec{};
  for (std::size_t n = 0; n < node_count; ++n) {
    NodeSpec node;
    node.name = "node" + std::to_string(n);
    node.platform = sim::paper_workstation_hetero();
    cluster.nodes.push_back(std::move(node));
  }
  return cluster;
}

}  // namespace hcc::cluster
