// Hierarchical (two-level) HCC-MF across a cluster (extension).
//
// Level 1: inside each node, plain HCC-MF — a local parameter server, DP
// partitioning over the node's CPUs/GPUs, COMM over PCIe/UPI.
// Level 2: across nodes, the same parameter-server pattern once more — the
// rating matrix's rows are split across nodes (so each node's P rows stay
// node-local, Strategy 1 applies at cluster scope too), and a global server
// on node 0 merges the nodes' Q deltas over the network each global epoch.
//
// Timing: node epochs run in parallel (each from the intra-node engine);
// the global exchange adds network transfer (parallel links) plus a serial
// global sync — the same Eq. 1 structure one level up.  `local_epochs`
// trades global communication against staleness, the standard knob this
// architecture adds over single-node HCC.
//
// Functionally each node behaves exactly like one HCC worker against the
// global server (pull Q, train the node's slice, push a per-item-weighted
// delta), so the functional path reuses core::Server / core::TrainWorker.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/membership.hpp"
#include "core/hccmf.hpp"
#include "fault/plan.hpp"

namespace hcc::cluster {

/// Configuration of a hierarchical run.
struct HierarchicalConfig {
  mf::SgdConfig sgd;
  comm::CommConfig comm;           ///< used at both levels (FP16 etc.)
  ClusterSpec cluster;
  std::uint32_t local_epochs = 1;  ///< node-local epochs per global epoch
  core::DataManagerOptions manager;
  std::string dataset_name;
  std::uint32_t host_threads = 0;  ///< functional ASGD threads per node
  /// Execution mode of the functional global epoch (see
  /// core/epoch_executor.hpp): kSerial iterates nodes on one thread in the
  /// legacy order; kParallel runs each node's pull/train/push pipeline on
  /// its own thread against a striped global server — the closest
  /// functional analogue of real cluster nodes working concurrently.
  core::ExecOptions exec;
  /// Cache-aware visit order for each node's slice (see data/schedule.hpp);
  /// kAsIs (default) keeps the legacy bit-identical trajectory.
  data::ScheduleOptions schedule;
  /// Elastic membership + fault tolerance at cluster scope: kill events
  /// address *nodes*, `join:w<N>@e<E>` re-admits one, chaos transport
  /// events drive each node's link to the global server, and node death
  /// (kill or exhausted link) triggers repartition + checkpoint rollback.
  /// Defaults keep the trainer bit-identical to the pre-elastic behavior.
  fault::FaultOptions fault;
};

/// Per-global-epoch timing decomposition.
struct GlobalEpochTiming {
  double node_max_s = 0.0;      ///< slowest node's local epoch(s)
  double network_s = 0.0;       ///< global pull+push over the interconnect
  double global_sync_s = 0.0;   ///< serial Q merge on the global server
  double total_s = 0.0;
};

/// The result of a hierarchical run.
struct ClusterReport {
  std::vector<double> node_shares;       ///< data split across nodes
  std::vector<GlobalEpochTiming> epochs; ///< one per *global* epoch
  double total_virtual_s = 0.0;
  double updates_per_s = 0.0;
  double ideal_updates_per_s = 0.0;
  double utilization = 0.0;
  std::vector<double> test_rmse;         ///< per global epoch (functional)
  std::optional<mf::FactorModel> model;
  /// Elastic-membership tallies (empty / zero on a fault-free run).
  std::vector<std::uint32_t> dead_nodes;    ///< ids, in order of death
  std::vector<std::uint32_t> joined_nodes;  ///< ids, in order of (re)join
  std::uint64_t recoveries = 0;             ///< node deaths survived
};

/// Two-level HCC-MF.
class HierarchicalHcc {
 public:
  explicit HierarchicalHcc(HierarchicalConfig config);

  /// Timing-only run at `shape` (paper-scale what-if).
  ClusterReport simulate(const sim::DatasetShape& shape);

  /// Functional training: real SGD on each node's slice, real Q merges at
  /// both levels.  `sgd.epochs` counts *global* epochs.
  ClusterReport train(const data::RatingMatrix& train_ratings,
                      const data::RatingMatrix* test_ratings = nullptr);

  /// Data split across nodes: DP0 over the nodes' aggregate ideal rates
  /// (a node is "one big worker" at cluster level).
  std::vector<double> node_shares(const sim::DatasetShape& shape) const;

 private:
  GlobalEpochTiming time_global_epoch(const sim::DatasetShape& shape,
                                      const std::vector<double>& shares,
                                      bool last) const;

  HierarchicalConfig config_;
};

}  // namespace hcc::cluster
