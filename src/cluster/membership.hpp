// Elastic cluster membership (who is in the parameter-server group).
//
// The single-box framework never had to ask which workers exist — the
// platform spec was the roster.  A scale-out cluster does: a node whose
// link dies (fault::LinkDeadError), whose device is killed, or whose
// scripted `join:w<N>@e<E>` event fires changes the active set mid-run.
// MembershipTable is the one place that state lives: per-node status, the
// epoch each transition happened, and the obs mirrors
// (`cluster.active_nodes` gauge, `cluster.deaths` / `cluster.joins`
// counters) CI smoke checks read.
//
// The table is bookkeeping only — the *mechanics* of a transition (slice
// repartition, checkpoint rollback, worker rebuild) stay in the trainer,
// which already owns them for the single-node dead-worker path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "fault/plan.hpp"
#include "obs/metrics.hpp"

namespace hcc::cluster {

enum class NodeState : std::uint8_t { kActive, kDead, kJoining };

const char* node_state_name(NodeState state);

/// One node's membership record.
struct NodeStatus {
  NodeState state = NodeState::kActive;
  std::uint32_t since_epoch = 0;  ///< global epoch of the last transition
};

class MembershipTable {
 public:
  explicit MembershipTable(std::size_t nodes);

  std::size_t size() const noexcept { return nodes_.size(); }
  NodeState state(std::size_t node) const { return nodes_[node].state; }
  bool is_active(std::size_t node) const {
    return nodes_[node].state == NodeState::kActive;
  }

  /// Death: the node leaves the group (LinkDeadError, kill event, ...).
  void mark_dead(std::size_t node, std::uint32_t epoch);

  /// Join/rejoin: the node (re)enters the group at `epoch`.  Passes
  /// through kJoining only notionally — the trainer rebuilds the
  /// partition synchronously, so the node is active on return.
  void mark_joined(std::size_t node, std::uint32_t epoch);

  std::size_t active_count() const noexcept;
  /// Per-node activity mask in node-id order (the executor's alive vector).
  std::vector<bool> active_mask() const;

  std::uint64_t deaths() const noexcept { return deaths_; }
  std::uint64_t joins() const noexcept { return joins_; }

  /// Node ids with a scripted join event at exactly `epoch` (the trainer
  /// latches each event separately so a post-rollback replay of the epoch
  /// does not re-fire it).
  static std::vector<std::uint32_t> joins_due(const fault::FaultPlan& plan,
                                              std::uint32_t epoch);

  std::string to_string() const;

 private:
  void publish();

  std::vector<NodeStatus> nodes_;
  std::uint64_t deaths_ = 0;
  std::uint64_t joins_ = 0;
  obs::Gauge* active_gauge_ = nullptr;
  obs::Counter* deaths_counter_ = nullptr;
  obs::Counter* joins_counter_ = nullptr;
};

}  // namespace hcc::cluster
