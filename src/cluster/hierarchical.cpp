#include "cluster/hierarchical.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "comm/payload.hpp"
#include "core/epoch_executor.hpp"
#include "core/partition.hpp"
#include "core/server.hpp"
#include "core/worker.hpp"
#include "data/grid.hpp"
#include "mf/metrics.hpp"
#include "obs/metrics.hpp"

namespace hcc::cluster {

HierarchicalHcc::HierarchicalHcc(HierarchicalConfig config)
    : config_(std::move(config)) {}

std::vector<double> HierarchicalHcc::node_shares(
    const sim::DatasetShape& shape) const {
  std::vector<double> times;
  times.reserve(config_.cluster.nodes.size());
  for (const auto& node : config_.cluster.nodes) {
    times.push_back(static_cast<double>(shape.nnz) /
                    node.platform.ideal_update_rate(shape));
  }
  return core::dp0_partition(times);
}

GlobalEpochTiming HierarchicalHcc::time_global_epoch(
    const sim::DatasetShape& shape, const std::vector<double>& shares,
    bool last) const {
  GlobalEpochTiming timing;

  // Level 1: node-local epochs run in parallel across nodes.
  for (std::size_t n = 0; n < config_.cluster.nodes.size(); ++n) {
    sim::DatasetShape node_shape = shape;
    node_shape.m = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(std::llround(shape.m * shares[n])));
    node_shape.nnz = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(std::llround(
               static_cast<double>(shape.nnz) * shares[n])));

    core::HccMfConfig node_config;
    node_config.sgd = config_.sgd;
    node_config.sgd.epochs = config_.local_epochs;
    node_config.comm = config_.comm;
    node_config.platform = config_.cluster.nodes[n].platform;
    node_config.manager = config_.manager;
    node_config.dataset_name = config_.dataset_name;
    const double node_s =
        core::HccMf(node_config).simulate(node_shape).total_virtual_s;
    timing.node_max_s = std::max(timing.node_max_s, node_s);
  }

  // Level 2: global Q exchange over the network (links are parallel, so
  // the per-node transfer time is the exposed one) ...
  const std::uint64_t q_elements = shape.n * shape.k;
  double wire = 2.0 * comm::wire_bytes(q_elements, config_.comm.fp16);
  if (last) {
    // ... the final global push also delivers every node's P rows.
    wire += comm::wire_bytes(shape.m * shape.k, config_.comm.fp16);
  }
  timing.network_s = wire / (config_.cluster.network.bandwidth_gbs * 1e9) +
                     2.0 * config_.cluster.network.latency_s;

  // ... plus the serial global merge, one multiply-add per Q parameter per
  // node (Eq. 3 one level up).
  const double sync_bytes = static_cast<double>(q_elements) * 4.0;
  const double per_node_sync =
      3.0 * sync_bytes / (config_.cluster.global_server.mem_bandwidth_gbs * 1e9) +
      (sync_bytes / 4.0) / (config_.cluster.global_server.compute_gflops * 1e9);
  timing.global_sync_s =
      per_node_sync * static_cast<double>(config_.cluster.nodes.size());

  timing.total_s = timing.node_max_s + timing.network_s + timing.global_sync_s;
  return timing;
}

ClusterReport HierarchicalHcc::simulate(const sim::DatasetShape& shape) {
  ClusterReport report;
  report.node_shares = node_shares(shape);
  const std::uint32_t global_epochs = config_.sgd.epochs;
  const GlobalEpochTiming mid =
      time_global_epoch(shape, report.node_shares, false);
  const GlobalEpochTiming last =
      time_global_epoch(shape, report.node_shares, true);
  for (std::uint32_t e = 0; e < global_epochs; ++e) {
    const GlobalEpochTiming& t = (e + 1 == global_epochs) ? last : mid;
    report.epochs.push_back(t);
    report.total_virtual_s += t.total_s;
  }
  const double updates = static_cast<double>(shape.nnz) *
                         config_.local_epochs * global_epochs;
  report.updates_per_s =
      report.total_virtual_s > 0 ? updates / report.total_virtual_s : 0.0;
  report.ideal_updates_per_s = config_.cluster.ideal_update_rate(shape);
  report.utilization = report.ideal_updates_per_s > 0
                           ? report.updates_per_s / report.ideal_updates_per_s
                           : 0.0;
  return report;
}

ClusterReport HierarchicalHcc::train(const data::RatingMatrix& train_ratings,
                                     const data::RatingMatrix* test_ratings) {
  const bool transpose = train_ratings.cols() > train_ratings.rows();
  data::RatingMatrix matrix =
      transpose ? train_ratings.transposed() : train_ratings;
  data::RatingMatrix test_local;
  if (test_ratings != nullptr && transpose) {
    test_local = test_ratings->transposed();
    test_ratings = &test_local;
  }

  sim::DatasetShape shape;
  shape.name = config_.dataset_name;
  shape.m = matrix.rows();
  shape.n = matrix.cols();
  shape.nnz = matrix.nnz();
  shape.k = config_.sgd.k;

  ClusterReport report;
  report.node_shares = node_shares(shape);

  // Row-grid the data across nodes; each node is one cluster-level worker.
  const auto grid =
      data::make_grid(matrix, data::GridKind::kRow, report.node_shares);
  auto slices =
      data::assign_slices(std::move(matrix), data::GridKind::kRow, grid);

  double mean = 0.0;
  std::size_t nnz = 0;
  for (const auto& s : slices) {
    for (const auto& e : s.entries()) mean += e.r;
    nnz += s.nnz();
  }
  mean = nnz > 0 ? mean / static_cast<double>(nnz) : 1.0;

  util::Rng rng(config_.sgd.seed);
  mf::FactorModel model(shape.m, shape.n, shape.k);
  model.init_random(rng, static_cast<float>(mean));
  const std::uint32_t stripes = core::resolve_stripes(
      config_.exec, static_cast<std::uint32_t>(shape.n), slices.size());
  core::Server global_server(std::move(model), config_.comm, stripes);

  // Per-item weights across nodes (same rule as the intra-node merge).
  std::vector<std::vector<std::size_t>> counts;
  std::vector<std::size_t> totals(shape.n, 0);
  for (const auto& s : slices) {
    counts.push_back(s.col_counts());
    for (std::size_t i = 0; i < shape.n; ++i) totals[i] += counts.back()[i];
  }

  std::vector<core::TrainWorker> nodes;
  for (std::size_t n = 0; n < slices.size(); ++n) {
    nodes.emplace_back(static_cast<std::uint32_t>(n),
                       config_.cluster.nodes[n].name, std::move(slices[n]),
                       config_.comm, /*streams=*/1);
    std::vector<float> weights(shape.n, 0.0f);
    for (std::size_t i = 0; i < shape.n; ++i) {
      if (totals[i] > 0) {
        weights[i] = static_cast<float>(counts[n][i]) /
                     static_cast<float>(totals[i]);
      }
    }
    nodes.back().set_item_weights(std::move(weights));
    nodes.back().set_exec(config_.exec.mode == core::ExecMode::kParallel,
                          config_.exec.double_buffer);
    nodes.back().set_schedule(config_.schedule, config_.sgd.k);
  }

  std::unique_ptr<util::ThreadPool> pool;
  if (config_.host_threads > 0) {
    pool = std::make_unique<util::ThreadPool>(config_.host_threads);
  }

  const GlobalEpochTiming mid =
      time_global_epoch(shape, report.node_shares, false);
  const GlobalEpochTiming last_t =
      time_global_epoch(shape, report.node_shares, true);

  core::EpochExecutor executor(config_.exec, nodes.size());
  const std::vector<bool> all_alive(nodes.size(), true);

  obs::registry().gauge("sched.policy").set(
      static_cast<double>(static_cast<int>(config_.schedule.policy)));
  obs::registry().gauge("sched.tile_kb").set(
      static_cast<double>(config_.schedule.tile_kb));

  float lr = config_.sgd.learn_rate;
  for (std::uint32_t epoch = 0; epoch < config_.sgd.epochs; ++epoch) {
    // One node's global epoch: pull, `local_epochs` full passes over the
    // node's slice between global syncs (the staleness/communication
    // trade-off knob), push.
    auto node_pipeline = [&](core::TrainWorker& node) {
      node.prepare_epoch();
      node.pull(global_server);
      for (std::uint32_t le = 0; le < config_.local_epochs; ++le) {
        node.compute_chunk(global_server, 0, lr, config_.sgd.reg_p,
                           config_.sgd.reg_q, pool.get());
      }
      node.push(global_server);
    };
    if (executor.mode() == core::ExecMode::kParallel &&
        config_.exec.steal && config_.local_epochs == 1) {
      // Work stealing across nodes: run_epoch's steal branch chunk-queues
      // each node's slice and lets drained nodes help the stragglers.
      // Only the single-local-epoch shape maps onto one chunk drain per
      // global epoch; with local_epochs > 1 the repeated passes keep the
      // explicit pipeline below.
      executor.run_epoch(nodes, all_alive, global_server, lr,
                         config_.sgd.reg_p, config_.sgd.reg_q, pool.get());
    } else if (executor.mode() == core::ExecMode::kParallel) {
      // Cluster nodes really do work concurrently; run each node's whole
      // pipeline on its own executor thread against the striped server.
      executor.run_parallel(all_alive,
                            [&](std::size_t n) { node_pipeline(nodes[n]); });
    } else {
      // Legacy order: all pulls, all local trainings, all pushes.
      for (auto& node : nodes) node.prepare_epoch();
      for (auto& node : nodes) node.pull(global_server);
      for (auto& node : nodes) {
        for (std::uint32_t le = 0; le < config_.local_epochs; ++le) {
          node.compute_chunk(global_server, 0, lr, config_.sgd.reg_p,
                             config_.sgd.reg_q, pool.get());
        }
      }
      for (auto& node : nodes) node.push(global_server);
    }
    lr *= config_.sgd.lr_decay;

    if (config_.schedule.policy != data::SchedulePolicy::kAsIs) {
      // Harvested on the coordinator thread after the barrier (same rule
      // as HccMf): never read ScheduleStats from the node threads.
      double tiles = 0.0;
      double reorder_ms = 0.0;
      for (const auto& node : nodes) {
        tiles += static_cast<double>(node.schedule_stats().tiles);
        reorder_ms += node.schedule_stats().reorder_ms;
      }
      obs::registry().gauge("sched.tiles").set(tiles);
      obs::registry().gauge("sched.reorder_ms").set(reorder_ms);
    }

    const GlobalEpochTiming& t =
        (epoch + 1 == config_.sgd.epochs) ? last_t : mid;
    report.epochs.push_back(t);
    report.total_virtual_s += t.total_s;
    if (test_ratings != nullptr) {
      report.test_rmse.push_back(mf::rmse(global_server.model(),
                                          *test_ratings));
    }
  }
  if (config_.comm.fp16) global_server.roundtrip_p_through_codec();

  const double updates = static_cast<double>(shape.nnz) *
                         config_.local_epochs * config_.sgd.epochs;
  report.updates_per_s =
      report.total_virtual_s > 0 ? updates / report.total_virtual_s : 0.0;
  report.ideal_updates_per_s = config_.cluster.ideal_update_rate(shape);
  report.utilization = report.ideal_updates_per_s > 0
                           ? report.updates_per_s / report.ideal_updates_per_s
                           : 0.0;
  report.model = std::move(global_server.model());
  return report;
}

}  // namespace hcc::cluster
