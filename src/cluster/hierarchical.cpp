#include "cluster/hierarchical.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "comm/payload.hpp"
#include "core/adaptive.hpp"
#include "core/epoch_executor.hpp"
#include "core/partition.hpp"
#include "core/server.hpp"
#include "core/worker.hpp"
#include "data/grid.hpp"
#include "fault/checkpoint.hpp"
#include "fault/errors.hpp"
#include "fault/recovery.hpp"
#include "mf/metrics.hpp"
#include "obs/metrics.hpp"
#include "util/clock.hpp"
#include "util/log.hpp"

namespace hcc::cluster {

HierarchicalHcc::HierarchicalHcc(HierarchicalConfig config)
    : config_(std::move(config)) {}

std::vector<double> HierarchicalHcc::node_shares(
    const sim::DatasetShape& shape) const {
  std::vector<double> times;
  times.reserve(config_.cluster.nodes.size());
  for (const auto& node : config_.cluster.nodes) {
    times.push_back(static_cast<double>(shape.nnz) /
                    node.platform.ideal_update_rate(shape));
  }
  return core::dp0_partition(times);
}

GlobalEpochTiming HierarchicalHcc::time_global_epoch(
    const sim::DatasetShape& shape, const std::vector<double>& shares,
    bool last) const {
  GlobalEpochTiming timing;

  // Level 1: node-local epochs run in parallel across nodes.
  for (std::size_t n = 0; n < config_.cluster.nodes.size(); ++n) {
    sim::DatasetShape node_shape = shape;
    node_shape.m = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(std::llround(shape.m * shares[n])));
    node_shape.nnz = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(std::llround(
               static_cast<double>(shape.nnz) * shares[n])));

    core::HccMfConfig node_config;
    node_config.sgd = config_.sgd;
    node_config.sgd.epochs = config_.local_epochs;
    node_config.comm = config_.comm;
    node_config.platform = config_.cluster.nodes[n].platform;
    node_config.manager = config_.manager;
    node_config.dataset_name = config_.dataset_name;
    const double node_s =
        core::HccMf(node_config).simulate(node_shape).total_virtual_s;
    timing.node_max_s = std::max(timing.node_max_s, node_s);
  }

  // Level 2: global Q exchange over the network (links are parallel, so
  // the per-node transfer time is the exposed one) ...
  const std::uint64_t q_elements = shape.n * shape.k;
  const comm::CodecKind kind = comm::effective_codec(config_.comm);
  // One Q pull plus one Q push per node; the directions may ride different
  // codecs (2-bit compresses only the push stream).
  double wire =
      comm::wire_bytes(q_elements, comm::pull_codec_kind(config_.comm),
                       shape.k) +
      comm::wire_bytes(q_elements, kind, shape.k);
  if (last) {
    // ... the final global push also delivers every node's P rows.
    wire += comm::wire_bytes(shape.m * shape.k, kind, shape.k);
  }
  timing.network_s = wire / (config_.cluster.network.bandwidth_gbs * 1e9) +
                     2.0 * config_.cluster.network.latency_s;

  // ... plus the serial global merge, one multiply-add per Q parameter per
  // node (Eq. 3 one level up).
  const double sync_bytes = static_cast<double>(q_elements) * 4.0;
  const double per_node_sync =
      3.0 * sync_bytes / (config_.cluster.global_server.mem_bandwidth_gbs * 1e9) +
      (sync_bytes / 4.0) / (config_.cluster.global_server.compute_gflops * 1e9);
  timing.global_sync_s =
      per_node_sync * static_cast<double>(config_.cluster.nodes.size());

  timing.total_s = timing.node_max_s + timing.network_s + timing.global_sync_s;
  return timing;
}

ClusterReport HierarchicalHcc::simulate(const sim::DatasetShape& shape) {
  ClusterReport report;
  report.node_shares = node_shares(shape);
  const std::uint32_t global_epochs = config_.sgd.epochs;
  const GlobalEpochTiming mid =
      time_global_epoch(shape, report.node_shares, false);
  const GlobalEpochTiming last =
      time_global_epoch(shape, report.node_shares, true);
  for (std::uint32_t e = 0; e < global_epochs; ++e) {
    const GlobalEpochTiming& t = (e + 1 == global_epochs) ? last : mid;
    report.epochs.push_back(t);
    report.total_virtual_s += t.total_s;
  }
  const double updates = static_cast<double>(shape.nnz) *
                         config_.local_epochs * global_epochs;
  report.updates_per_s =
      report.total_virtual_s > 0 ? updates / report.total_virtual_s : 0.0;
  report.ideal_updates_per_s = config_.cluster.ideal_update_rate(shape);
  report.utilization = report.ideal_updates_per_s > 0
                           ? report.updates_per_s / report.ideal_updates_per_s
                           : 0.0;
  return report;
}

ClusterReport HierarchicalHcc::train(const data::RatingMatrix& train_ratings,
                                     const data::RatingMatrix* test_ratings) {
  // One scripted plan drives both the chaos transport (each node's link to
  // the global server) and the injector (node kills/stalls/joins): a plan
  // given on either side covers both, same rule as HccMf::train.
  if (config_.comm.transport.kind == comm::TransportKind::kChaos) {
    if (config_.comm.transport.plan.empty()) {
      config_.comm.transport.plan = config_.fault.plan;
    } else if (config_.fault.plan.empty()) {
      config_.fault.plan = config_.comm.transport.plan;
    }
  }

  const bool transpose = train_ratings.cols() > train_ratings.rows();
  data::RatingMatrix matrix =
      transpose ? train_ratings.transposed() : train_ratings;
  data::RatingMatrix test_local;
  if (test_ratings != nullptr && transpose) {
    test_local = test_ratings->transposed();
    test_ratings = &test_local;
  }

  sim::DatasetShape shape;
  shape.name = config_.dataset_name;
  shape.m = matrix.rows();
  shape.n = matrix.cols();
  shape.nnz = matrix.nnz();
  shape.k = config_.sgd.k;

  ClusterReport report;
  report.node_shares = node_shares(shape);

  fault::FaultRuntime fault_rt(config_.fault);
  // Elastic membership engages only with a scripted plan or persisted
  // checkpoints; otherwise this function is bit-identical to the
  // pre-elastic trainer (all-alive mask, no checkpoint copies).
  const bool elastic = fault_rt.active();

  // Row-grid the data across nodes; each node is one cluster-level worker.
  const auto grid =
      data::make_grid(matrix, data::GridKind::kRow, report.node_shares);
  // A join rebuilds the partition from scratch, so elastic runs keep the
  // pristine matrix around.
  data::RatingMatrix full;
  if (elastic) full = matrix;
  auto slices =
      data::assign_slices(std::move(matrix), data::GridKind::kRow, grid);

  double mean = 0.0;
  std::size_t nnz = 0;
  for (const auto& s : slices) {
    for (const auto& e : s.entries()) mean += e.r;
    nnz += s.nnz();
  }
  mean = nnz > 0 ? mean / static_cast<double>(nnz) : 1.0;

  util::Rng rng(config_.sgd.seed);
  mf::FactorModel model(shape.m, shape.n, shape.k);
  model.init_random(rng, static_cast<float>(mean));
  const std::uint32_t stripes = core::resolve_stripes(
      config_.exec, static_cast<std::uint32_t>(shape.n), slices.size());
  core::Server global_server(std::move(model), config_.comm, stripes);

  MembershipTable members(slices.size());
  std::vector<bool> alive(slices.size(), true);
  std::vector<double> live_shares = report.node_shares;

  std::vector<core::TrainWorker> nodes;
  auto build_nodes = [&](std::vector<data::RatingMatrix>&& parts) {
    nodes.clear();
    for (std::size_t n = 0; n < parts.size(); ++n) {
      nodes.emplace_back(static_cast<std::uint32_t>(n),
                         config_.cluster.nodes[n].name, std::move(parts[n]),
                         config_.comm, /*streams=*/1);
      nodes.back().set_exec(config_.exec.mode == core::ExecMode::kParallel,
                            config_.exec.double_buffer);
      nodes.back().set_schedule(config_.schedule, config_.sgd.k);
      if (elastic) {
        nodes.back().set_fault_runtime(&fault_rt);
        nodes.back().set_real_stalls(config_.fault.real_stalls);
      }
    }
  };

  // Per-item weights across the *active* nodes (same rule as the
  // intra-node merge); recomputed after every membership change.
  auto refresh_node_weights = [&]() {
    std::vector<std::size_t> totals(shape.n, 0);
    std::vector<std::vector<std::size_t>> counts(nodes.size());
    for (std::size_t n = 0; n < nodes.size(); ++n) {
      if (!alive[n]) continue;
      counts[n] = nodes[n].slice().col_counts();
      for (std::size_t i = 0; i < shape.n; ++i) totals[i] += counts[n][i];
    }
    for (std::size_t n = 0; n < nodes.size(); ++n) {
      if (!alive[n]) continue;
      std::vector<float> weights(shape.n, 0.0f);
      for (std::size_t i = 0; i < shape.n; ++i) {
        if (totals[i] > 0) {
          weights[i] = static_cast<float>(counts[n][i]) /
                       static_cast<float>(totals[i]);
        }
      }
      nodes[n].set_item_weights(std::move(weights));
    }
  };

  // Full repartition from the pristine matrix over the current active set
  // (the join path: every node's slice may move, so rebuild them all).
  auto repartition_full = [&]() {
    std::vector<double> fractions = report.node_shares;
    double sum = 0.0;
    for (std::size_t n = 0; n < fractions.size(); ++n) {
      if (!alive[n]) fractions[n] = 0.0;
      sum += fractions[n];
    }
    for (double& f : fractions) f /= sum;
    live_shares = fractions;
    const auto regrid = data::make_grid(full, data::GridKind::kRow, fractions);
    data::RatingMatrix copy = full;
    build_nodes(
        data::assign_slices(std::move(copy), data::GridKind::kRow, regrid));
    refresh_node_weights();
  };

  build_nodes(std::move(slices));
  refresh_node_weights();

  std::unique_ptr<util::ThreadPool> pool;
  if (config_.host_threads > 0) {
    pool = std::make_unique<util::ThreadPool>(config_.host_threads);
  }

  const GlobalEpochTiming mid =
      time_global_epoch(shape, report.node_shares, false);
  const GlobalEpochTiming last_t =
      time_global_epoch(shape, report.node_shares, true);

  core::EpochExecutor executor(config_.exec, nodes.size());

  obs::registry().gauge("sched.policy").set(
      static_cast<double>(static_cast<int>(config_.schedule.policy)));
  obs::registry().gauge("sched.tile_kb").set(
      static_cast<double>(config_.schedule.tile_kb));

  // Per-epoch records are pre-filled (the timings are precomputed
  // constants), so a post-rollback replay overwrites in place instead of
  // appending duplicates.
  report.epochs.reserve(config_.sgd.epochs);
  for (std::uint32_t e = 0; e < config_.sgd.epochs; ++e) {
    const GlobalEpochTiming& t = (e + 1 == config_.sgd.epochs) ? last_t : mid;
    report.epochs.push_back(t);
    report.total_virtual_s += t.total_s;
  }
  if (test_ratings != nullptr) {
    report.test_rmse.assign(config_.sgd.epochs, 0.0);
  }

  float lr = config_.sgd.learn_rate;
  fault::CheckpointStore ckpts(config_.fault.checkpoint_dir);
  if (elastic) {
    ckpts.save({0, lr, config_.sgd.seed, global_server.model()});
  }
  std::uint32_t rollbacks_done = 0;
  // Each scripted join fires exactly once per run: a rolled-back replay of
  // its epoch must not re-admit (and re-repartition) the node again.
  std::vector<bool> join_latched(config_.fault.plan.events.size(), false);

  std::uint32_t epoch = 0;
  while (epoch < config_.sgd.epochs) {
    fault_rt.injector().begin_epoch(epoch);

    // Scripted joins due this epoch: re-admit the node, rebuild the
    // partition from the pristine matrix, roll back to the last consistent
    // checkpoint and resume from there.
    bool rejoined = false;
    for (std::size_t ei = 0; ei < config_.fault.plan.events.size(); ++ei) {
      const fault::FaultEvent& ev = config_.fault.plan.events[ei];
      if (ev.kind != fault::FaultKind::kJoin || ev.epoch != epoch ||
          join_latched[ei]) {
        continue;
      }
      join_latched[ei] = true;
      if (ev.worker >= nodes.size() || alive[ev.worker]) continue;
      alive[ev.worker] = true;
      members.mark_joined(ev.worker, epoch);
      report.joined_nodes.push_back(ev.worker);
      rejoined = true;
      util::log_kv(util::LogLevel::kWarn, "cluster.join",
                   {util::kv("node", ev.worker), util::kv("epoch", epoch)});
    }
    if (rejoined) {
      repartition_full();
      if (ckpts.has_checkpoint()) {
        const fault::Checkpoint& ck = ckpts.latest();
        global_server.model() = ck.model;
        lr = ck.lr;
        epoch = ck.next_epoch;
      }
      continue;
    }

    try {
      if (elastic) {
        for (auto& node : nodes) {
          node.set_stall_factor(
              fault_rt.injector().stall_factor(node.id(), epoch));
        }
      }
      // One node's global epoch: pull, `local_epochs` full passes over the
      // node's slice between global syncs (the staleness/communication
      // trade-off knob), push.
      auto node_pipeline = [&](core::TrainWorker& node) {
        node.prepare_epoch();
        node.pull(global_server);
        for (std::uint32_t le = 0; le < config_.local_epochs; ++le) {
          node.compute_chunk(global_server, 0, lr, config_.sgd.reg_p,
                             config_.sgd.reg_q, pool.get());
        }
        node.push(global_server);
      };
      if (executor.mode() == core::ExecMode::kParallel &&
          config_.exec.steal && config_.local_epochs == 1) {
        // Work stealing across nodes: run_epoch's steal branch chunk-queues
        // each node's slice and lets drained nodes help the stragglers.
        // Only the single-local-epoch shape maps onto one chunk drain per
        // global epoch; with local_epochs > 1 the repeated passes keep the
        // explicit pipeline below.
        executor.run_epoch(nodes, alive, global_server, lr,
                           config_.sgd.reg_p, config_.sgd.reg_q, pool.get());
      } else if (executor.mode() == core::ExecMode::kParallel) {
        // Cluster nodes really do work concurrently; run each node's whole
        // pipeline on its own executor thread against the striped server.
        executor.run_parallel(alive,
                              [&](std::size_t n) { node_pipeline(nodes[n]); });
      } else {
        // Legacy order: all pulls, all local trainings, all pushes.
        for (std::size_t n = 0; n < nodes.size(); ++n) {
          if (alive[n]) nodes[n].prepare_epoch();
        }
        for (std::size_t n = 0; n < nodes.size(); ++n) {
          if (alive[n]) nodes[n].pull(global_server);
        }
        for (std::size_t n = 0; n < nodes.size(); ++n) {
          if (!alive[n]) continue;
          for (std::uint32_t le = 0; le < config_.local_epochs; ++le) {
            nodes[n].compute_chunk(global_server, 0, lr, config_.sgd.reg_p,
                                   config_.sgd.reg_q, pool.get());
          }
        }
        for (std::size_t n = 0; n < nodes.size(); ++n) {
          if (alive[n]) nodes[n].push(global_server);
        }
      }
      lr *= config_.sgd.lr_decay;

      if (config_.schedule.policy != data::SchedulePolicy::kAsIs) {
        // Harvested on the coordinator thread after the barrier (same rule
        // as HccMf): never read ScheduleStats from the node threads.
        double tiles = 0.0;
        double reorder_ms = 0.0;
        for (const auto& node : nodes) {
          tiles += static_cast<double>(node.schedule_stats().tiles);
          reorder_ms += node.schedule_stats().reorder_ms;
        }
        obs::registry().gauge("sched.tiles").set(tiles);
        obs::registry().gauge("sched.reorder_ms").set(reorder_ms);
      }

      if (test_ratings != nullptr) {
        report.test_rmse[epoch] =
            mf::rmse(global_server.model(), *test_ratings);
      }
      ++epoch;
      if (elastic && epoch % config_.fault.checkpoint_every == 0) {
        ckpts.save({epoch, lr, config_.sgd.seed, global_server.model()});
      }
    } catch (const fault::WorkerFault& dead) {
      // Node death (scripted kill or a link declared dead by the session
      // layer): hand its rows to the survivors, roll the global model back
      // to the last consistent checkpoint and resume degraded — the
      // single-node dead-worker path, one level up.
      util::Stopwatch watch;
      const std::uint32_t victim = dead.worker();
      for (auto& node : nodes) {
        (void)node.take_measured();
        (void)node.take_computed();
      }
      if (victim >= nodes.size() || !alive[victim] ||
          !ckpts.has_checkpoint() || members.active_count() <= 1) {
        throw;  // nothing left to degrade to
      }
      alive[victim] = false;
      members.mark_dead(victim, epoch);
      report.dead_nodes.push_back(victim);
      ++report.recoveries;
      live_shares = core::redistribute_dead_share(live_shares, victim);
      const auto batches = fault::split_entries_by_shares(
          nodes[victim].slice(), live_shares);
      for (std::size_t n = 0; n < nodes.size(); ++n) {
        if (n != victim && !batches[n].empty()) {
          nodes[n].absorb_entries(batches[n]);
        }
      }
      refresh_node_weights();
      const fault::Checkpoint& ck = ckpts.latest();
      global_server.model() = ck.model;
      lr = ck.lr;
      epoch = ck.next_epoch;
      fault_rt.count_recovery(watch.seconds());
      util::log_kv(util::LogLevel::kWarn, "cluster.recovery",
                   {util::kv("node", victim), util::kv("resume_epoch", epoch),
                    util::kv("wall_s", watch.seconds())});
    } catch (const fault::DivergenceError& div) {
      // Divergence guard: rewind with a halved learning rate (persisted
      // via the re-saved checkpoint), bounded by max_rollbacks.
      for (auto& node : nodes) {
        (void)node.take_measured();
        (void)node.take_computed();
      }
      if (rollbacks_done >= config_.fault.max_rollbacks ||
          !ckpts.has_checkpoint()) {
        throw fault::TrainingDivergedError(rollbacks_done);
      }
      ++rollbacks_done;
      const fault::Checkpoint& ck = ckpts.latest();
      global_server.model() = ck.model;
      lr = ck.lr * 0.5f;
      epoch = ck.next_epoch;
      ckpts.save({epoch, lr, config_.sgd.seed, global_server.model()});
      fault_rt.count_rollback();
      util::log_kv(util::LogLevel::kWarn, "cluster.rollback",
                   {util::kv("node", div.worker()),
                    util::kv("resume_epoch", epoch), util::kv("lr", lr)});
    }
  }
  if (comm::effective_codec(config_.comm) != comm::CodecKind::kFp32) {
    global_server.roundtrip_p_through_codec();
  }

  const double updates = static_cast<double>(shape.nnz) *
                         config_.local_epochs * config_.sgd.epochs;
  report.updates_per_s =
      report.total_virtual_s > 0 ? updates / report.total_virtual_s : 0.0;
  report.ideal_updates_per_s = config_.cluster.ideal_update_rate(shape);
  report.utilization = report.ideal_updates_per_s > 0
                           ? report.updates_per_s / report.ideal_updates_per_s
                           : 0.0;
  report.model = std::move(global_server.model());
  return report;
}

}  // namespace hcc::cluster
