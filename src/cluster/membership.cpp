#include "cluster/membership.hpp"

namespace hcc::cluster {

const char* node_state_name(NodeState state) {
  switch (state) {
    case NodeState::kActive: return "active";
    case NodeState::kDead: return "dead";
    case NodeState::kJoining: return "joining";
  }
  return "?";
}

MembershipTable::MembershipTable(std::size_t nodes) : nodes_(nodes) {
  auto& reg = obs::registry();
  active_gauge_ = &reg.gauge("cluster.active_nodes");
  deaths_counter_ = &reg.counter("cluster.deaths");
  joins_counter_ = &reg.counter("cluster.joins");
  publish();
}

void MembershipTable::mark_dead(std::size_t node, std::uint32_t epoch) {
  if (node >= nodes_.size() || nodes_[node].state == NodeState::kDead) return;
  nodes_[node] = {NodeState::kDead, epoch};
  ++deaths_;
  deaths_counter_->add(1);
  publish();
}

void MembershipTable::mark_joined(std::size_t node, std::uint32_t epoch) {
  if (node >= nodes_.size() || nodes_[node].state == NodeState::kActive) {
    return;
  }
  nodes_[node] = {NodeState::kActive, epoch};
  ++joins_;
  joins_counter_->add(1);
  publish();
}

std::size_t MembershipTable::active_count() const noexcept {
  std::size_t n = 0;
  for (const NodeStatus& s : nodes_) {
    if (s.state == NodeState::kActive) ++n;
  }
  return n;
}

std::vector<bool> MembershipTable::active_mask() const {
  std::vector<bool> mask(nodes_.size());
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    mask[n] = nodes_[n].state == NodeState::kActive;
  }
  return mask;
}

std::vector<std::uint32_t> MembershipTable::joins_due(
    const fault::FaultPlan& plan, std::uint32_t epoch) {
  std::vector<std::uint32_t> due;
  for (const fault::FaultEvent& event : plan.events) {
    if (event.kind == fault::FaultKind::kJoin && event.epoch == epoch) {
      due.push_back(event.worker);
    }
  }
  return due;
}

std::string MembershipTable::to_string() const {
  std::string out;
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    if (!out.empty()) out += ' ';
    out += "node" + std::to_string(n) + "=" +
           node_state_name(nodes_[n].state) + "@e" +
           std::to_string(nodes_[n].since_epoch);
  }
  return out;
}

void MembershipTable::publish() {
  active_gauge_->set(static_cast<double>(active_count()));
}

}  // namespace hcc::cluster
