// Multi-node cluster specifications (extension).
//
// The paper's Figure 2 shows the multi-CPU/GPU architecture scaled out to a
// multi-node cluster, and its conclusion leaves the communication
// bottleneck on square matrices as future work.  This module extends the
// virtual platform to several workstation nodes joined by a network, as
// the substrate for the hierarchical two-level HCC of hierarchical.hpp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/platform.hpp"

namespace hcc::cluster {

/// The inter-node network.
struct InterconnectSpec {
  std::string name = "100GbE";
  double bandwidth_gbs = 12.5;  ///< per-link, full duplex
  double latency_s = 10e-6;     ///< per message
};

/// Common interconnect presets.
InterconnectSpec infiniband_hdr();  ///< 200 Gb/s, 1 us
InterconnectSpec ethernet_100g();   ///< 100 Gb/s, 10 us
InterconnectSpec ethernet_10g();    ///< 10 Gb/s, 50 us

/// One machine of the cluster.
struct NodeSpec {
  std::string name;
  sim::PlatformSpec platform;
};

/// The whole cluster: nodes + network + the global parameter server (which
/// lives on node 0's CPU, mirroring the intra-node design).
struct ClusterSpec {
  std::string name;
  std::vector<NodeSpec> nodes;
  InterconnectSpec network;
  sim::ServerSpec global_server;

  /// Sum of all workers' independent update rates across all nodes.
  double ideal_update_rate(const sim::DatasetShape& shape) const;

  std::size_t total_workers() const;
};

/// `node_count` copies of the paper's workstation joined by `network`
/// (Figure 2 scaled out).
ClusterSpec workstation_cluster(std::size_t node_count,
                                const InterconnectSpec& network);

}  // namespace hcc::cluster
